package storage

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"asterixfeeds/internal/adm"
	"asterixfeeds/internal/lsm"
)

// frameOf encodes n sequential tweet records as a frame.
func frameOf(start, n int) [][]byte {
	recs := make([][]byte, 0, n)
	for i := start; i < start+n; i++ {
		rec := tweetRec(fmt.Sprintf("t%04d", i), fmt.Sprintf("user%d", i%7), &adm.Point{X: float64(i % 90), Y: float64(i % 45)})
		recs = append(recs, adm.Encode(rec))
	}
	return recs
}

// TestDataErrorClassification: record-caused failures are DataErrors,
// injected environmental failures are not.
func TestDataErrorClassification(t *testing.T) {
	ds := testDataset()
	fire := false
	m := NewManager("A", t.TempDir(), lsm.Options{FaultHook: func(op string) error {
		if fire && strings.HasSuffix(op, "wal.append") {
			return lsm.ErrInjected
		}
		return nil
	}})
	defer m.Close()
	p, err := m.OpenPartition(ds)
	if err != nil {
		t.Fatal(err)
	}

	bad := (&adm.RecordBuilder{}).Add("id", adm.String("x")).MustBuild()
	if err := p.Insert(bad); !IsDataError(err) {
		t.Fatalf("validation failure = %v, want DataError", err)
	}
	if err := p.InsertFrame([][]byte{adm.Encode(bad)}); !IsDataError(err) {
		t.Fatalf("frame validation failure = %v, want DataError", err)
	}

	fire = true
	if err := p.Insert(tweetRec("t1", "u", nil)); err == nil || IsDataError(err) {
		t.Fatalf("injected WAL failure = %v, want non-data error", err)
	}
}

// TestInsertFrameFaultFallbackNoLossNoPhantoms is the PR 2 fast-path
// failure test: a frame whose batched insert dies on an environmental
// fault is retried record-at-a-time (exactly what storeRuntime's guarded
// fallback does), and the partition ends with every record exactly once —
// none lost, none phantom, secondaries consistent.
func TestInsertFrameFaultFallbackNoLossNoPhantoms(t *testing.T) {
	ds := testDataset()
	armed := false
	fired := 0
	m := NewManager("A", t.TempDir(), lsm.Options{FaultHook: func(op string) error {
		if armed && strings.HasSuffix(op, "primary/wal.appendBatch") {
			armed = false
			fired++
			return lsm.ErrInjected
		}
		return nil
	}})
	defer m.Close()
	p, err := m.OpenPartition(ds)
	if err != nil {
		t.Fatal(err)
	}

	if err := p.InsertFrame(frameOf(0, 10)); err != nil {
		t.Fatal(err)
	}

	armed = true
	frame := frameOf(10, 10)
	if err := p.InsertFrame(frame); err == nil || IsDataError(err) {
		t.Fatalf("InsertFrame under fault = %v, want environmental error", err)
	}
	if fired != 1 {
		t.Fatalf("fault fired %d times, want 1", fired)
	}
	// The guarded fallback: per-record retry of the same frame.
	for _, rec := range frame {
		if err := p.InsertEncoded(rec); err != nil {
			t.Fatal(err)
		}
	}

	n, err := p.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("Count = %d, want 20 (no loss, no phantoms)", n)
	}
	if err := p.VerifyIndexes(); err != nil {
		t.Fatalf("index consistency after fallback: %v", err)
	}
}

// TestInsertFrameTornPrimaryRecovery kills the primary WAL mid-frame with a
// torn write — the crash-mid-InsertFrame case. The node is "dead" (the
// wedged tree refuses writes); reopening from disk must replay every frame
// before the torn one and drop the torn batch atomically, with secondaries
// agreeing (primary batch precedes secondary batches, so a torn primary
// means no secondary writes for that frame).
func TestInsertFrameTornPrimaryRecovery(t *testing.T) {
	ds := testDataset()
	dir := t.TempDir()
	frameNo := 0
	m := NewManager("A", dir, lsm.Options{FaultHook: func(op string) error {
		if strings.HasSuffix(op, "primary/wal.appendBatch") {
			frameNo++
			if frameNo == 3 {
				return lsm.ErrTornWrite
			}
		}
		return nil
	}})
	p, err := m.OpenPartition(ds)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		if err := p.InsertFrame(frameOf(i*8, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.InsertFrame(frameOf(16, 8)); !errors.Is(err, lsm.ErrTornWrite) {
		t.Fatalf("InsertFrame mid-crash = %v, want ErrTornWrite", err)
	}
	// The tree is wedged exactly like a crashed node's.
	if err := p.InsertFrame(frameOf(24, 8)); !errors.Is(err, lsm.ErrWALBroken) {
		t.Fatalf("InsertFrame after crash = %v, want ErrWALBroken", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: reopen the node's storage from disk and replay.
	re := NewManager("A", dir, lsm.Options{})
	defer re.Close()
	rp, err := re.OpenPartition(ds)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rp.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Fatalf("recovered %d records, want the 16 from whole frames (torn frame dropped atomically)", n)
	}
	if err := rp.VerifyIndexes(); err != nil {
		t.Fatalf("index consistency after replay: %v", err)
	}
	// Replaying the lost frame (what at-least-once does for un-acked
	// records) converges idempotently.
	if err := rp.InsertFrame(frameOf(16, 8)); err != nil {
		t.Fatal(err)
	}
	if err := rp.InsertFrame(frameOf(8, 8)); err != nil { // duplicate frame: upsert
		t.Fatal(err)
	}
	if n, _ = rp.Count(); n != 24 {
		t.Fatalf("after replay Count = %d, want 24", n)
	}
	if err := rp.VerifyIndexes(); err != nil {
		t.Fatalf("index consistency after replay+retry: %v", err)
	}
}

// TestInsertFrameTornSecondaryRecovery tears the WAL of a secondary tree
// mid-frame instead: on replay the primary holds the frame but the
// secondary dropped its torn batch — re-inserting the frame (the replay of
// un-acked records) must restore full index consistency.
func TestInsertFrameTornSecondaryRecovery(t *testing.T) {
	ds := testDataset()
	dir := t.TempDir()
	hits := 0
	m := NewManager("A", dir, lsm.Options{FaultHook: func(op string) error {
		if strings.HasSuffix(op, "userIdx/wal.appendBatch") {
			hits++
			if hits == 2 {
				return lsm.ErrTornWrite
			}
		}
		return nil
	}})
	p, err := m.OpenPartition(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InsertFrame(frameOf(0, 6)); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertFrame(frameOf(6, 6)); !errors.Is(err, lsm.ErrTornWrite) {
		t.Fatalf("InsertFrame = %v, want ErrTornWrite", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	re := NewManager("A", dir, lsm.Options{})
	defer re.Close()
	rp, err := re.OpenPartition(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Primary has 12 records, userIdx only 6: divergence VerifyIndexes must
	// catch...
	if err := rp.VerifyIndexes(); err == nil {
		t.Fatal("VerifyIndexes missed a torn secondary")
	}
	// ...and replaying the un-acked frame must repair.
	if err := rp.InsertFrame(frameOf(6, 6)); err != nil {
		t.Fatal(err)
	}
	if err := rp.VerifyIndexes(); err != nil {
		t.Fatalf("index consistency after replay: %v", err)
	}
	if n, _ := rp.Count(); n != 12 {
		t.Fatalf("Count = %d, want 12", n)
	}
}

// TestRemovePartitionIdx: a discarded replica's directory is gone and a
// reopened partition starts empty.
func TestRemovePartitionIdx(t *testing.T) {
	ds := testDataset("A", "B")
	m := NewManager("B", t.TempDir(), lsm.Options{})
	defer m.Close()
	p, err := m.OpenPartitionIdx(ds, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(tweetRec("t1", "u", nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.RemovePartitionIdx(ds, 0, true); err != nil {
		t.Fatal(err)
	}
	if got := m.PartitionIdx(ds.QualifiedName(), 0); got != nil {
		t.Fatal("removed partition still registered")
	}
	re, err := m.OpenPartitionIdx(ds, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := re.Count(); n != 0 {
		t.Fatalf("reopened partition has %d records, want 0 (directory removed)", n)
	}
}
