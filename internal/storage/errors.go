package storage

import "errors"

// DataError marks a failure caused by the record itself — validation,
// malformed encoding, a missing primary key — rather than by the
// environment (WAL write, fsync, node state). Ingestion policy treats the
// two differently: a data error is a soft failure (log, skip, ack under
// the feed's soft-failure policy) while an environmental error must leave
// the record un-acked so the at-least-once protocol replays it.
type DataError struct{ Err error }

func (e *DataError) Error() string { return e.Err.Error() }
func (e *DataError) Unwrap() error { return e.Err }

// dataErr wraps err as a DataError; nil stays nil.
func dataErr(err error) error {
	if err == nil {
		return nil
	}
	return &DataError{Err: err}
}

// IsDataError reports whether err is (or wraps) a DataError.
func IsDataError(err error) bool {
	var de *DataError
	return errors.As(err, &de)
}
