package storage

import (
	"testing"

	"asterixfeeds/internal/adm"
	"asterixfeeds/internal/lsm"
)

func TestReplicaOf(t *testing.T) {
	ds := testDataset("A", "B", "C")
	ds.Replicated = true
	cases := map[int]string{0: "B", 1: "C", 2: "A"}
	for i, want := range cases {
		if got := ds.ReplicaOf(i); got != want {
			t.Errorf("ReplicaOf(%d) = %q, want %q", i, got, want)
		}
	}
	if ds.ReplicaOf(-1) != "" || ds.ReplicaOf(3) != "" {
		t.Error("out-of-range ReplicaOf should be empty")
	}
	ds.Replicated = false
	if ds.ReplicaOf(0) != "" {
		t.Error("ReplicaOf on unreplicated dataset should be empty")
	}
	single := testDataset("A")
	single.Replicated = true
	if single.ReplicaOf(0) != "" {
		t.Error("single-node nodegroup cannot host a replica")
	}
}

func TestOpenPartitionIdxAndPromotion(t *testing.T) {
	ds := testDataset("A", "B")
	ds.Replicated = true
	mA := NewManager("A", t.TempDir(), lsm.Options{})
	defer mA.Close()

	// A hosts its own partition 0 and B's replica (partition 1).
	p0, err := mA.OpenPartition(ds)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Index() != 0 {
		t.Fatalf("own partition index = %d", p0.Index())
	}
	r1, err := mA.OpenPartitionIdx(ds, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Index() != 1 || r1 == p0 {
		t.Fatal("replica partition wrong")
	}
	// Lookups by index find both; Partition() returns the lowest index.
	if mA.PartitionIdx(ds.QualifiedName(), 0) != p0 || mA.PartitionIdx(ds.QualifiedName(), 1) != r1 {
		t.Fatal("PartitionIdx lookups wrong")
	}
	if mA.Partition(ds.QualifiedName()) != p0 {
		t.Fatal("Partition() should return the lowest index")
	}
	// Re-opening the replica slot as a "primary" (post-promotion) returns
	// the same partition with its data.
	r1.Insert(tweetRec("t1", "u", nil)) //nolint:errcheck
	again, err := mA.OpenPartitionIdx(ds, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if again != r1 {
		t.Fatal("promotion reopened a different partition")
	}
	if _, ok, _ := again.Lookup([]adm.Value{adm.String("t1")}); !ok {
		t.Fatal("promoted replica lost its record")
	}
	if _, err := mA.OpenPartition(&Dataset{Dataverse: "x", Name: "y", Type: ds.Type, PrimaryKey: []string{"id"}, NodeGroup: []string{"Z"}}); err == nil {
		t.Fatal("OpenPartition for foreign nodegroup succeeded")
	}
}

func TestOpenPartitionIdxRange(t *testing.T) {
	ds := testDataset("A")
	m := NewManager("A", t.TempDir(), lsm.Options{})
	defer m.Close()
	if _, err := m.OpenPartitionIdx(ds, 5, false); err == nil {
		t.Fatal("out-of-range partition index accepted")
	}
	if _, err := m.OpenPartitionIdx(ds, -1, false); err == nil {
		t.Fatal("negative partition index accepted")
	}
}

func TestCompositePrimaryKey(t *testing.T) {
	rt := adm.MustRecordType("Event", true, []adm.Field{
		{Name: "stream", Type: adm.TString},
		{Name: "seq", Type: adm.TInt64},
		{Name: "payload", Type: adm.TString},
	})
	ds := &Dataset{
		Dataverse: "feeds", Name: "Events", Type: rt,
		PrimaryKey: []string{"stream", "seq"}, NodeGroup: []string{"A"},
	}
	m := NewManager("A", t.TempDir(), lsm.Options{})
	defer m.Close()
	p, err := m.OpenPartition(ds)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(stream string, seq int64) *adm.Record {
		return adm.MustRecord([]string{"stream", "seq", "payload"},
			[]adm.Value{adm.String(stream), adm.Int64(seq), adm.String("x")})
	}
	// Same stream, different seq: distinct records.
	p.Insert(mk("s1", 1)) //nolint:errcheck
	p.Insert(mk("s1", 2)) //nolint:errcheck
	p.Insert(mk("s2", 1)) //nolint:errcheck
	n, _ := p.Count()
	if n != 3 {
		t.Fatalf("composite-key count = %d, want 3", n)
	}
	// Same composite key: upsert.
	p.Insert(mk("s1", 1)) //nolint:errcheck
	n, _ = p.Count()
	if n != 3 {
		t.Fatalf("composite-key upsert count = %d, want 3", n)
	}
	got, ok, err := p.Lookup([]adm.Value{adm.String("s1"), adm.Int64(2)})
	if err != nil || !ok {
		t.Fatalf("composite Lookup = %v, %v", ok, err)
	}
	if s, _ := got.Field("seq"); s.(adm.Int64) != 2 {
		t.Fatalf("Lookup returned %s", got)
	}
}

func TestDropPartitionRemovesAll(t *testing.T) {
	ds := testDataset("A", "B")
	ds.Replicated = true
	m := NewManager("A", t.TempDir(), lsm.Options{})
	defer m.Close()
	if _, err := m.OpenPartition(ds); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenPartitionIdx(ds, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := m.DropPartition(ds.QualifiedName()); err != nil {
		t.Fatal(err)
	}
	if m.PartitionIdx(ds.QualifiedName(), 0) != nil || m.PartitionIdx(ds.QualifiedName(), 1) != nil {
		t.Fatal("DropPartition left partitions behind")
	}
}
