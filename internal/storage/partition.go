package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sync"

	"asterixfeeds/internal/adm"
	"asterixfeeds/internal/lsm"
)

// Partition is one hash partition of a dataset: a primary LSM tree keyed by
// encoded primary key, plus one LSM tree per secondary index. All trees for
// a partition live under one directory on the hosting node.
type Partition struct {
	ds  *Dataset
	idx int

	mu          sync.Mutex
	primary     *lsm.Tree
	secondaries map[string]*lsm.Tree
	inserted    int64
	closed      bool
	frame       frameScratch // reusable InsertFrame state, guarded by mu
}

// encFieldRef is one (name, encoded value) pair captured while scanning a
// serialized record; both slices alias the record's bytes.
type encFieldRef struct {
	name, enc []byte
}

// frameScratch is per-partition scratch reused across InsertFrame calls so
// the steady-state frame path allocates only what the memtable retains
// (keys, batch growth) — not per-call bookkeeping.
type frameScratch struct {
	fields  []encFieldRef  // field scan of the current record
	pks     [][]byte       // per-record encoded primary key
	skeys   [][]byte       // per-record secondary keys, flattened nIdx per record
	pending map[string]int // pk -> latest record index within this frame
	prim    *lsm.Batch
	sec     []*lsm.Batch // parallel to ds.Indexes
}

// release drops references retained from the last frame (the memtable now
// owns the key slices) while keeping slice capacity for the next call.
func (fs *frameScratch) release() {
	for i := range fs.fields {
		fs.fields[i] = encFieldRef{}
	}
	fs.fields = fs.fields[:0]
	for i := range fs.pks {
		fs.pks[i] = nil
	}
	fs.pks = fs.pks[:0]
	for i := range fs.skeys {
		fs.skeys[i] = nil
	}
	fs.skeys = fs.skeys[:0]
	for k := range fs.pending {
		delete(fs.pending, k)
	}
	if fs.prim != nil {
		fs.prim.Reset()
	}
	for _, b := range fs.sec {
		if b != nil {
			b.Reset()
		}
	}
}

// openPartition opens (creating if needed) partition idx of ds under dir.
// When lsmOpt carries a FaultHook, each tree's failure points are prefixed
// with "<partition-dir>/<tree>/" (e.g. "p001/primary/wal.appendBatch") so a
// fault-injection harness can target one tree of one partition.
func openPartition(ds *Dataset, idx int, dir string, lsmOpt lsm.Options) (*Partition, error) {
	p := &Partition{ds: ds, idx: idx, secondaries: make(map[string]*lsm.Tree)}
	label := filepath.Base(dir)
	// The primary and every secondary tree recover independently (separate
	// directories, separate WALs), so open them concurrently: a partition's
	// reopen cost is its slowest tree's recovery, not the sum.
	treeOpt := func(sub, hook string) lsm.Options {
		o := lsmOpt
		o.Dir = filepath.Join(dir, sub)
		o.FaultHook = prefixHook(lsmOpt.FaultHook, label+"/"+hook+"/")
		return o
	}
	trees := make([]*lsm.Tree, 1+len(ds.Indexes))
	errs := make([]error, len(trees))
	done := make(chan struct{}, len(trees))
	open := func(slot int, opt lsm.Options) {
		trees[slot], errs[slot] = lsm.Open(opt)
		done <- struct{}{} // buffered to len(trees): never blocks
	}
	go open(0, treeOpt("primary", "primary"))
	for i, ix := range ds.Indexes {
		go open(1+i, treeOpt("idx-"+ix.Name, ix.Name))
	}
	for range trees {
		<-done
	}
	p.primary = trees[0]
	for i, ix := range ds.Indexes {
		if trees[1+i] != nil {
			p.secondaries[ix.Name] = trees[1+i]
		}
	}
	for _, err := range errs {
		if err != nil {
			_ = p.Close() // releases whichever trees did open
			return nil, err
		}
	}
	return p, nil
}

// prefixHook narrows a manager-wide fault hook to one tree by prefixing
// every failure-point name. It owns the nil contract: a nil hook maps to a
// nil hook, so the returned closure only ever wraps a non-nil h.
//
//feedlint:nilsafe
func prefixHook(h lsm.FaultHook, prefix string) lsm.FaultHook {
	if h == nil {
		return nil
	}
	return func(op string) error { return h(prefix + op) }
}

// Index reports this partition's index within the nodegroup.
func (p *Partition) Index() int { return p.idx }

// Dataset returns the partition's dataset declaration.
func (p *Partition) Dataset() *Dataset { return p.ds }

// Insert validates rec against the dataset type, writes it to the primary
// index, and updates every secondary index. The write is atomic at record
// level: the primary WAL entry precedes index maintenance.
func (p *Partition) Insert(rec *adm.Record) error {
	return p.insertRecord(rec, adm.Encode(rec))
}

// InsertEncoded inserts a serialized record. The record is decoded for
// validation and key extraction, but the original bytes are stored as-is —
// no re-encode round trip.
func (p *Partition) InsertEncoded(rec []byte) error {
	v, err := adm.DecodeOne(rec)
	if err != nil {
		return dataErr(err)
	}
	r, ok := v.(*adm.Record)
	if !ok {
		return dataErr(fmt.Errorf("storage: encoded value is %s, want record", v.Tag()))
	}
	return p.insertRecord(r, rec)
}

// insertRecord is the shared record-at-a-time write path: val must be the
// serialized form of rec and is stored without copying.
func (p *Partition) insertRecord(rec *adm.Record, val []byte) error {
	if err := p.ds.Type.Validate(rec); err != nil {
		return dataErr(err)
	}
	pk, err := p.ds.PrimaryKeyOf(rec)
	if err != nil {
		return dataErr(err)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("storage: partition closed")
	}
	// Replacing an existing record must first unhook its old secondary
	// entries.
	if old, ok, err := p.primary.Get(pk); err != nil {
		return err
	} else if ok {
		// p.mu spans the durable deletes and the re-insert below: a record's
		// primary and secondary entries must change atomically, so the
		// partition accepts stalling on the trees' fsyncs.
		//feedlint:allow lockorder -- record-level atomicity across primary and secondaries requires p.mu over durable writes
		if err := p.removeSecondariesLocked(pk, old); err != nil {
			return err
		}
	}
	if err := p.primary.Put(pk, val); err != nil {
		return err
	}
	for _, ix := range p.ds.Indexes {
		skey, ok, err := secondaryKey(ix, rec, pk)
		if err != nil {
			return dataErr(err)
		}
		if !ok {
			continue // absent optional field: not indexed
		}
		if err := p.secondaries[ix.Name].Put(skey, pk); err != nil {
			return err
		}
	}
	p.inserted++
	return nil
}

// InsertFrame inserts a whole frame of serialized records as one batched
// write per index: every record is validated and keyed straight from its
// bytes (no decode, no re-encode), then the primary tree and each secondary
// tree receive a single lsm.Batch — one lock acquisition, one composite WAL
// record, and at most one fsync per tree for the entire frame (group
// commit).
//
// Validation and key extraction complete for the whole frame before any
// tree is touched, so a validation error leaves the partition unmodified.
// Within a frame, a later record with the same primary key replaces an
// earlier one, exactly as two sequential Inserts would. The partition
// retains the record byte slices; callers recycling frame buffers must not
// reuse the record bytes afterwards (see hyracks.PutFrame).
func (p *Partition) InsertFrame(recs [][]byte) error {
	if len(recs) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("storage: partition closed")
	}
	fs := &p.frame
	defer fs.release()
	nIdx := len(p.ds.Indexes)

	// Phase A: validate every record and derive all keys, mutating nothing.
	// Failures here are data errors: caused by the frame's bytes, with the
	// partition untouched.
	for _, rec := range recs {
		if err := p.ds.Type.ValidateEncoded(rec); err != nil {
			return dataErr(err)
		}
		fs.fields = fs.fields[:0]
		if _, err := adm.ScanRecordFields(rec, func(name, enc []byte) bool {
			fs.fields = append(fs.fields, encFieldRef{name: name, enc: enc})
			return true
		}); err != nil {
			return dataErr(err)
		}
		pk, err := primaryKeyFromFields(p.ds, fs.fields)
		if err != nil {
			return dataErr(err)
		}
		fs.pks = append(fs.pks, pk)
		for _, ix := range p.ds.Indexes {
			skey, ok, err := secondaryKeyEncoded(ix, findField(fs.fields, ix.Field), pk)
			if err != nil {
				return dataErr(err)
			}
			if !ok {
				skey = nil
			}
			fs.skeys = append(fs.skeys, skey)
		}
	}

	// Phase B: build one batch per tree and apply them.
	if fs.prim == nil {
		fs.prim = lsm.NewBatch(len(recs))
		fs.pending = make(map[string]int, len(recs))
	}
	for len(fs.sec) < nIdx {
		fs.sec = append(fs.sec, lsm.NewBatch(len(recs)))
	}
	for i, rec := range recs {
		pk := fs.pks[i]
		if prev, dup := fs.pending[string(pk)]; dup {
			// An earlier record in this frame used the same key: unhook the
			// secondary entries it queued. Batch order makes the later Put
			// win when old and new keys coincide.
			for j := 0; j < nIdx; j++ {
				if old := fs.skeys[prev*nIdx+j]; old != nil {
					fs.sec[j].Delete(old)
				}
			}
		} else if old, found, err := p.primary.Get(pk); err != nil {
			return err
		} else if found {
			// Replacing a stored record: unhook its old secondary entries.
			v, err := adm.DecodeOne(old)
			if err != nil {
				return err
			}
			oldRec, ok := v.(*adm.Record)
			if !ok {
				return fmt.Errorf("storage: stored value is not a record")
			}
			for j, ix := range p.ds.Indexes {
				skey, present, err := secondaryKey(ix, oldRec, pk)
				if err != nil {
					return err
				}
				if present {
					fs.sec[j].Delete(skey)
				}
			}
		}
		fs.pending[string(pk)] = i
		fs.prim.Put(pk, rec)
		for j := 0; j < nIdx; j++ {
			if skey := fs.skeys[i*nIdx+j]; skey != nil {
				fs.sec[j].Put(skey, pk)
			}
		}
	}
	if err := p.primary.ApplyBatch(fs.prim); err != nil {
		return err
	}
	for j, ix := range p.ds.Indexes {
		if err := p.secondaries[ix.Name].ApplyBatch(fs.sec[j]); err != nil {
			return err
		}
	}
	p.inserted += int64(len(recs))
	return nil
}

// findField returns the encoded value of the named field from a scanned
// field list, or nil when absent.
func findField(fields []encFieldRef, name string) []byte {
	for _, f := range fields {
		if string(f.name) == name {
			return f.enc
		}
	}
	return nil
}

// primaryKeyFromFields concatenates the raw encoded primary key fields —
// byte-identical to Dataset.PrimaryKeyOf on the decoded record, since the
// encoding is canonical.
func primaryKeyFromFields(ds *Dataset, fields []encFieldRef) ([]byte, error) {
	total := 0
	for _, f := range ds.PrimaryKey {
		enc := findField(fields, f)
		if enc == nil || adm.TypeTag(enc[0]) == adm.TagMissing || adm.TypeTag(enc[0]) == adm.TagNull {
			return nil, fmt.Errorf("storage: record lacks primary key field %q", f)
		}
		total += len(enc)
	}
	pk := make([]byte, 0, total)
	for _, f := range ds.PrimaryKey {
		pk = append(pk, findField(fields, f)...)
	}
	return pk, nil
}

// secondaryKeyEncoded builds the same key as secondaryKey, but from the
// field's encoded bytes instead of a decoded value. ok=false means the
// field is absent/null and the record is simply not indexed.
func secondaryKeyEncoded(ix IndexDecl, encField, pk []byte) (key []byte, ok bool, err error) {
	if len(encField) == 0 {
		return nil, false, nil
	}
	tag := adm.TypeTag(encField[0])
	if tag == adm.TagNull || tag == adm.TagMissing {
		return nil, false, nil
	}
	switch ix.Kind {
	case BTree:
		key = make([]byte, 0, len(encField)+len(pk))
		key = append(key, encField...)
	case RTree:
		if tag != adm.TagPoint || len(encField) < 17 {
			return nil, false, fmt.Errorf("storage: rtree index %q over non-point value %s", ix.Name, tag)
		}
		pt := adm.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(encField[1:9])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(encField[9:17])),
		}
		key = cellPrefix(cellOf(pt))
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[0:], math.Float64bits(pt.X))
		binary.BigEndian.PutUint64(buf[8:], math.Float64bits(pt.Y))
		key = append(key, buf[:]...)
	default:
		return nil, false, fmt.Errorf("storage: unknown index kind %d", ix.Kind)
	}
	return append(key, pk...), true, nil
}

// Delete removes the record with the given primary key fields.
func (p *Partition) Delete(pkValues []adm.Value) error {
	if len(pkValues) != len(p.ds.PrimaryKey) {
		return fmt.Errorf("storage: %d key values for %d-field primary key", len(pkValues), len(p.ds.PrimaryKey))
	}
	var pk []byte
	for _, v := range pkValues {
		pk = adm.AppendValue(pk, v)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("storage: partition closed")
	}
	old, ok, err := p.primary.Get(pk)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	if err := p.removeSecondariesLocked(pk, old); err != nil {
		return err
	}
	if err := p.primary.Delete(pk); err != nil {
		return err
	}
	return nil
}

func (p *Partition) removeSecondariesLocked(pk, encodedOld []byte) error {
	v, err := adm.DecodeOne(encodedOld)
	if err != nil {
		return err
	}
	old, ok := v.(*adm.Record)
	if !ok {
		return fmt.Errorf("storage: stored value is not a record")
	}
	for _, ix := range p.ds.Indexes {
		skey, present, err := secondaryKey(ix, old, pk)
		if err != nil {
			return err
		}
		if !present {
			continue
		}
		if err := p.secondaries[ix.Name].Delete(skey); err != nil {
			return err
		}
	}
	return nil
}

// Lookup returns the record with the given primary key fields.
func (p *Partition) Lookup(pkValues []adm.Value) (*adm.Record, bool, error) {
	var pk []byte
	for _, v := range pkValues {
		pk = adm.AppendValue(pk, v)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, false, fmt.Errorf("storage: partition closed")
	}
	val, ok, err := p.primary.Get(pk)
	if err != nil || !ok {
		return nil, false, err
	}
	v, err := adm.DecodeOne(val)
	if err != nil {
		return nil, false, err
	}
	rec, isRec := v.(*adm.Record)
	if !isRec {
		return nil, false, fmt.Errorf("storage: stored value is not a record")
	}
	return rec, true, nil
}

// Scan invokes fn for every record in the partition in primary key order.
// fn returning false stops early.
func (p *Partition) Scan(fn func(rec *adm.Record) bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("storage: partition closed")
	}
	var scanErr error
	err := p.primary.Scan(nil, nil, func(_, val []byte) bool {
		v, err := adm.DecodeOne(val)
		if err != nil {
			scanErr = err
			return false
		}
		rec, ok := v.(*adm.Record)
		if !ok {
			scanErr = fmt.Errorf("storage: stored value is not a record")
			return false
		}
		return fn(rec)
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// Count reports the number of live records.
func (p *Partition) Count() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, fmt.Errorf("storage: partition closed")
	}
	return p.primary.Len()
}

// Inserted reports the number of successful Insert calls since open
// (a cheap counter; unlike Count it does not scan).
func (p *Partition) Inserted() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inserted
}

// SearchBTree returns the primary keys of records whose indexed field equals
// value, using the named btree index.
func (p *Partition) SearchBTree(indexName string, value adm.Value) ([]*adm.Record, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("storage: partition closed")
	}
	ix, ok := p.ds.Index(indexName)
	if !ok || ix.Kind != BTree {
		return nil, fmt.Errorf("storage: no btree index %q on %s", indexName, p.ds.QualifiedName())
	}
	t := p.secondaries[indexName]
	prefix := adm.Encode(value)
	upper := prefixUpperBound(prefix)
	var out []*adm.Record
	var innerErr error
	err := t.Scan(prefix, upper, func(_, pk []byte) bool {
		val, found, err := p.primary.Get(pk)
		if err != nil {
			innerErr = err
			return false
		}
		if !found {
			return true
		}
		v, err := adm.DecodeOne(val)
		if err != nil {
			innerErr = err
			return false
		}
		out = append(out, v.(*adm.Record))
		return true
	})
	if innerErr != nil {
		return nil, innerErr
	}
	return out, err
}

// SearchRTree returns records whose indexed point field lies within rect,
// using the named rtree index.
func (p *Partition) SearchRTree(indexName string, rect adm.Rectangle) ([]*adm.Record, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("storage: partition closed")
	}
	ix, ok := p.ds.Index(indexName)
	if !ok || ix.Kind != RTree {
		return nil, fmt.Errorf("storage: no rtree index %q on %s", indexName, p.ds.QualifiedName())
	}
	t := p.secondaries[indexName]
	var out []*adm.Record
	var innerErr error
	for _, cell := range cellsCovering(rect) {
		prefix := cellPrefix(cell)
		upper := prefixUpperBound(prefix)
		err := t.Scan(prefix, upper, func(key, pk []byte) bool {
			pt, ok := pointFromRTreeKey(key)
			if !ok || !rect.Contains(pt) {
				return true
			}
			val, found, err := p.primary.Get(pk)
			if err != nil {
				innerErr = err
				return false
			}
			if !found {
				return true
			}
			v, err := adm.DecodeOne(val)
			if err != nil {
				innerErr = err
				return false
			}
			out = append(out, v.(*adm.Record))
			return true
		})
		if innerErr != nil {
			return nil, innerErr
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// VerifyIndexes cross-checks primary/secondary consistency: every stored
// record must have exactly its expected entry in every secondary tree
// (mapping back to its primary key), and no secondary tree may hold
// dangling entries beyond those. Full scan per tree — intended for test
// harnesses and invariant checkers, not the hot path.
func (p *Partition) VerifyIndexes() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("storage: partition closed")
	}
	expect := make(map[string]int, len(p.ds.Indexes))
	var checkErr error
	err := p.primary.Scan(nil, nil, func(pk, val []byte) bool {
		v, err := adm.DecodeOne(val)
		if err != nil {
			checkErr = err
			return false
		}
		rec, ok := v.(*adm.Record)
		if !ok {
			checkErr = fmt.Errorf("storage: stored value is not a record")
			return false
		}
		for _, ix := range p.ds.Indexes {
			skey, present, err := secondaryKey(ix, rec, pk)
			if err != nil {
				checkErr = err
				return false
			}
			if !present {
				continue
			}
			got, found, err := p.secondaries[ix.Name].Get(skey)
			if err != nil {
				checkErr = err
				return false
			}
			if !found {
				checkErr = fmt.Errorf("storage: index %q missing entry for pk %x", ix.Name, pk)
				return false
			}
			if string(got) != string(pk) {
				checkErr = fmt.Errorf("storage: index %q entry for pk %x points at %x", ix.Name, pk, got)
				return false
			}
			expect[ix.Name]++
		}
		return true
	})
	if checkErr != nil {
		return checkErr
	}
	if err != nil {
		return err
	}
	for _, ix := range p.ds.Indexes {
		n, err := p.secondaries[ix.Name].Len()
		if err != nil {
			return err
		}
		if n != expect[ix.Name] {
			return fmt.Errorf("storage: index %q holds %d entries, want %d (dangling entries)", ix.Name, n, expect[ix.Name])
		}
	}
	return nil
}

// Flush flushes the primary and secondary trees to disk.
func (p *Partition) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	// Flush must see a quiesced partition: p.mu keeps writers out while
	// every tree drains its background pipeline. The trees never hold a
	// lock into a blocking primitive here — Tree.Flush waits on
	// close-signaled channels — so no lockorder waiver is needed anymore.
	if err := p.primary.Flush(); err != nil {
		return err
	}
	for _, t := range p.secondaries {
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates LSM component statistics across the partition's primary
// and secondary trees.
func (p *Partition) Stats() lsm.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return lsm.Stats{}
	}
	out := p.primary.Stats()
	for _, t := range p.secondaries {
		out.Add(t.Stats())
	}
	return out
}

// Close releases the partition's trees.
func (p *Partition) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	var first error
	if p.primary != nil {
		if err := p.primary.Close(); err != nil {
			first = err
		}
	}
	for _, t := range p.secondaries {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// secondaryKey builds the secondary index key for rec: the indexed field's
// encoding (or grid cell for rtree) concatenated with the primary key, so
// duplicate field values remain distinct entries. ok=false means the field
// is absent/null and the record is simply not indexed.
func secondaryKey(ix IndexDecl, rec *adm.Record, pk []byte) (key []byte, ok bool, err error) {
	v, present := rec.Field(ix.Field)
	if !present || v.Tag() == adm.TagNull || v.Tag() == adm.TagMissing {
		return nil, false, nil
	}
	switch ix.Kind {
	case BTree:
		key = adm.Encode(v)
	case RTree:
		pt, isPt := v.(adm.Point)
		if !isPt {
			return nil, false, fmt.Errorf("storage: rtree index %q over non-point value %s", ix.Name, v.Tag())
		}
		key = cellPrefix(cellOf(pt))
		// Embed the exact point for in-index filtering.
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[0:], math.Float64bits(pt.X))
		binary.BigEndian.PutUint64(buf[8:], math.Float64bits(pt.Y))
		key = append(key, buf[:]...)
	default:
		return nil, false, fmt.Errorf("storage: unknown index kind %d", ix.Kind)
	}
	return append(key, pk...), true, nil
}

// prefixUpperBound returns the smallest byte string greater than every
// string with the given prefix, or nil when no such bound exists.
func prefixUpperBound(prefix []byte) []byte {
	up := append([]byte(nil), prefix...)
	for i := len(up) - 1; i >= 0; i-- {
		if up[i] != 0xFF {
			up[i]++
			return up[:i+1]
		}
	}
	return nil
}
