// Package storage implements AsterixDB's dataset layer: hash-partitioned
// datasets stored as LSM B+-trees, one partition per nodegroup member, with
// optional LSM-based secondary indexes (B-tree on any field, grid-based
// R-tree for spatial points). Inserting a record updates the primary index
// and all secondaries under the partition's write-ahead log, giving
// record-level atomicity as described in §5.3 of the paper.
package storage
