package lint

import (
	"errors"
	"fmt"
	"go/build/constraint"
	"runtime"
	"strconv"
	"strings"
)

// errAllFilesExcluded marks a directory whose every Go file sits behind an
// unsatisfied build constraint; LoadAll skips such packages after the
// exclusions are recorded in Loader.Skipped.
var errAllFilesExcluded = errors.New("every Go file excluded by build constraints")

// knownOS and knownArch are the GOOS/GOARCH values recognized in filename
// suffixes (foo_linux.go, foo_amd64.go, foo_linux_amd64.go), mirroring the
// go tool's list closely enough for this module's sources.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// unixOS mirrors the go tool's "unix" build-tag set for the systems above.
var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// excludedByBuild reports whether the file is excluded from this build by
// its filename suffix or a //go:build (or legacy // +build) constraint,
// and why. The loader previously dropped such files without a trace —
// feedlint -v now surfaces every exclusion via Loader.Skipped.
func excludedByBuild(name string, src []byte) (reason string, excluded bool) {
	if goos, goarch, ok := filenameConstraint(name); ok {
		if goos != "" && goos != runtime.GOOS {
			return fmt.Sprintf("filename requires GOOS=%s (have %s)", goos, runtime.GOOS), true
		}
		if goarch != "" && goarch != runtime.GOARCH {
			return fmt.Sprintf("filename requires GOARCH=%s (have %s)", goarch, runtime.GOARCH), true
		}
	}
	expr, ok := headerConstraint(src)
	if !ok {
		return "", false
	}
	if !expr.Eval(satisfiedTag) {
		return fmt.Sprintf("build constraint %q not satisfied", expr.String()), true
	}
	return "", false
}

// filenameConstraint extracts the implicit GOOS/GOARCH constraint from a
// filename: name_GOOS.go, name_GOARCH.go, or name_GOOS_GOARCH.go. A file
// whose entire base name is the tag (e.g. linux.go) carries no constraint,
// matching the go tool.
func filenameConstraint(name string) (goos, goarch string, ok bool) {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return "", "", false
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		goarch = last
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			goos = parts[len(parts)-2]
		}
		return goos, goarch, true
	}
	if knownOS[last] {
		return last, "", true
	}
	return "", "", false
}

// headerConstraint scans the lines before the package clause for a
// //go:build line (preferred) or legacy // +build lines and parses them.
func headerConstraint(src []byte) (constraint.Expr, bool) {
	var plusBuild []constraint.Expr
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if constraint.IsGoBuild(line) {
				if expr, err := constraint.Parse(line); err == nil {
					// A //go:build line supersedes any +build lines.
					return expr, true
				}
			}
			if constraint.IsPlusBuild(line) {
				if expr, err := constraint.Parse(line); err == nil {
					plusBuild = append(plusBuild, expr)
				}
			}
			continue
		}
		// First non-blank, non-comment line: the constraint block is over.
		// (A /* ... */ header comment cannot hold build constraints.)
		break
	}
	if len(plusBuild) == 0 {
		return nil, false
	}
	// Multiple +build lines AND together.
	expr := plusBuild[0]
	for _, e := range plusBuild[1:] {
		expr = &constraint.AndExpr{X: expr, Y: e}
	}
	return expr, true
}

// satisfiedTag reports whether one build tag holds for the running
// toolchain: the host GOOS/GOARCH, the gc compiler, the "unix" family
// tag, and go1.N version tags up to the current release. Custom tags are
// never set (feedlint has no -tags flag), so they evaluate false.
func satisfiedTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return unixOS[runtime.GOOS]
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		minor, err := strconv.Atoi(rest)
		return err == nil && minor <= currentGoMinor()
	}
	return false
}

func currentGoMinor() int {
	v := runtime.Version() // "go1.24.0" or "devel ..."
	rest, ok := strings.CutPrefix(v, "go1.")
	if !ok {
		return 999 // development toolchains satisfy every release tag
	}
	if i := strings.IndexByte(rest, '.'); i >= 0 {
		rest = rest[:i]
	}
	minor, err := strconv.Atoi(rest)
	if err != nil {
		return 999
	}
	return minor
}
