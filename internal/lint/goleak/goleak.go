// Package goleak flags goroutine-leak suspects in the ingestion pipeline:
// a `go func(){...}()` literal in the feed runtime (internal/core) or the
// dataflow engine (internal/hyracks) that captures neither a
// context.Context, nor a done/stop channel it receives from, nor a
// sync.WaitGroup it signals. Such a goroutine has no shutdown path — it
// outlives its feed job and leaks under the paper's
// connect/disconnect-heavy workloads.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"asterixfeeds/internal/lint"
)

// DefaultPackages are the pipeline packages whose goroutines must be
// lifecycle-managed.
var DefaultPackages = []string{"internal/core", "internal/hyracks"}

// Analyzer implements lint.Analyzer over the configured packages.
type Analyzer struct {
	// Packages are segment-boundary patterns selecting where the check
	// applies (see lint.MatchPath).
	Packages []string
}

// New returns a goleak analyzer scoped to the given package patterns,
// defaulting to DefaultPackages.
func New(packages []string) *Analyzer {
	if packages == nil {
		packages = DefaultPackages
	}
	return &Analyzer{Packages: packages}
}

// Name implements lint.Analyzer.
func (*Analyzer) Name() string { return "goleak" }

// Doc implements lint.Analyzer.
func (*Analyzer) Doc() string {
	return "go-func literals in pipeline packages must capture a context, done channel, or WaitGroup"
}

// Run implements lint.Analyzer.
func (a *Analyzer) Run(pkg *lint.Package) []lint.Finding {
	if !lint.MatchAny(a.Packages, pkg.Path) {
		return nil
	}
	var out []lint.Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !hasLifecycle(pkg, lit) {
				out = append(out, lint.Finding{
					Pos:     pkg.Fset.Position(gs.Go),
					Rule:    "goleak",
					Message: "goroutine captures no context, done channel, or WaitGroup; it has no shutdown path",
				})
			}
			return true
		})
	}
	return out
}

// hasLifecycle reports whether the literal's body shows any of the three
// accepted lifecycle signals:
//
//  1. it references a value of type context.Context (cancellation);
//  2. it receives from a channel — unary <-ch, a select clause, or
//     ranging over a channel (a done/stop/work channel closing ends it);
//  3. it calls Done or Wait on a sync.WaitGroup (tracked shutdown).
func hasLifecycle(pkg *lint.Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if isChan(pkg.Info.Types[n.X].Type) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Wait" {
					if isWaitGroup(pkg.Info.Types[sel.X].Type) {
						found = true
					}
				}
			}
		case ast.Expr:
			if isContext(pkg.Info.Types[n].Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
