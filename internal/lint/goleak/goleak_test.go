package goleak_test

import (
	"testing"

	"asterixfeeds/internal/lint/goleak"
	"asterixfeeds/internal/lint/linttest"
)

// TestFixture asserts that only the two untracked goroutines in bad.go
// are flagged; the context, done-channel, WaitGroup, and range-drain
// variants in good.go stay clean.
func TestFixture(t *testing.T) {
	linttest.RunGolden(t, "goleakmod", goleak.New(nil))
}
