// Package linttest is the shared harness for analyzer fixture tests: it
// loads a fixture module from internal/lint/testdata, runs analyzers over
// it, and compares the findings against the fixture's expect.golden file
// (exact file, line, rule id, and message). Run tests with -update to
// regenerate goldens.
package linttest

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asterixfeeds/internal/lint"
)

var update = flag.Bool("update", false, "rewrite expect.golden files")

// Fixture loads the named fixture module (a directory under
// internal/lint/testdata containing its own go.mod) and returns its
// packages plus the fixture root.
func Fixture(t *testing.T, name string) ([]*lint.Package, string) {
	t.Helper()
	// Analyzer tests run from internal/lint/<analyzer>, the framework's
	// own tests from internal/lint; probe both spots.
	var root string
	for _, candidate := range []string{
		filepath.Join("testdata", name),
		filepath.Join("..", "testdata", name),
	} {
		if _, err := os.Stat(filepath.Join(candidate, "go.mod")); err == nil {
			abs, err := filepath.Abs(candidate)
			if err != nil {
				t.Fatal(err)
			}
			root = abs
			break
		}
	}
	if root == "" {
		t.Fatalf("fixture %s not found under testdata or ../testdata", name)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if loader.RootDir != root {
		t.Fatalf("fixture %s resolved to module %s; does it have a go.mod?", name, loader.RootDir)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkgs, root
}

// RunGolden runs the analyzers over the named fixture and asserts that
// the findings match <fixture>/expect.golden exactly.
func RunGolden(t *testing.T, fixture string, analyzers ...lint.Analyzer) {
	t.Helper()
	pkgs, root := Fixture(t, fixture)
	got := Format(root, lint.Run(pkgs, analyzers))

	goldenPath := filepath.Join(root, "expect.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", fixture, got, want)
	}
}

// Format renders findings one per line with paths relative to root, the
// exact format stored in goldens.
func Format(root string, findings []lint.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			f.Pos.Filename = filepath.ToSlash(rel)
		}
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}
