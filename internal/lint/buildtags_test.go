package lint

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestLoaderReportsTagSkippedFiles is the regression test for the silent
// build-tag skip: a file behind an unsatisfiable constraint must still
// load the rest of its package cleanly AND leave a record in
// Loader.Skipped so feedlint -v can report it.
func TestLoaderReportsTagSkippedFiles(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "tagmod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "tagmod/pkg" {
		t.Fatalf("loaded %d packages, want just tagmod/pkg", len(pkgs))
	}
	// The excluded siblings re-declare Value; type errors here mean a
	// tagged file leaked into the package.
	if len(pkgs[0].TypeErrors) > 0 {
		t.Errorf("tagmod/pkg has type errors (tagged file leaked in?): %v", pkgs[0].TypeErrors)
	}
	want := map[string]string{
		"skip_custom.go": "feedlintneverset",
		"skip_ignore.go": "ignore",
		"skip_legacy.go": "feedlintneverset",
	}
	got := make(map[string]string)
	for _, s := range loader.Skipped {
		got[filepath.Base(s.Path)] = s.Reason
	}
	for file, tag := range want {
		reason, ok := got[file]
		if !ok {
			t.Errorf("%s: not reported in Loader.Skipped", file)
			continue
		}
		if !strings.Contains(reason, tag) {
			t.Errorf("%s: reason %q does not name tag %q", file, reason, tag)
		}
	}
	if len(got) != len(want) {
		t.Errorf("Skipped = %v, want exactly %d entries", got, len(want))
	}
}

func TestFilenameConstraint(t *testing.T) {
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	cases := []struct {
		name     string
		excluded bool
	}{
		{"plain.go", false},
		{"wal_batch.go", false},              // "batch" is no GOOS/GOARCH
		{"x_" + runtime.GOOS + ".go", false}, // host OS: included
		{"x_" + otherOS + ".go", true},       // foreign OS: excluded
		{"x_" + otherOS + "_amd64.go", true}, // foreign OS wins even with host arch
		{"x_mips64.go", runtime.GOARCH != "mips64"},
		{otherOS + ".go", false}, // whole basename is never a constraint
	}
	for _, c := range cases {
		_, excluded := excludedByBuild(c.name, nil)
		if excluded != c.excluded {
			t.Errorf("excludedByBuild(%q) = %v, want %v", c.name, excluded, c.excluded)
		}
	}
}
