// Package errdrop flags silently discarded error results from
// Write/Flush/Close/Sync calls in the durability-critical layers
// (internal/lsm, internal/storage, and internal/core). A dropped error on
// those paths is a silent WAL-or-disk-loss bug: the record looks durable
// but never reached stable storage. An error must be handled or explicitly discarded with `_ =`;
// deferred calls are exempt (Go offers no ergonomic way to propagate
// them, and the hot paths check errors on the in-line calls).
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"asterixfeeds/internal/lint"
)

// DefaultPackages are the durability-critical packages. internal/core is
// included because the feed tail owns the ack/replay protocol: a dropped
// Close/Sync error there can silently break the at-least-once guarantee
// (the feedchaos harness found exactly that class of bug).
var DefaultPackages = []string{"internal/lsm", "internal/storage", "internal/core"}

// checkedMethods are the durability-relevant method names.
var checkedMethods = map[string]bool{
	"Write": true, "Flush": true, "Close": true, "Sync": true,
}

// neverFails lists receiver types whose Write contractually cannot return
// a non-nil error; flagging them would be pure noise.
var neverFails = []string{
	"hash.Hash", "hash.Hash32", "hash.Hash64",
	"bytes.Buffer", "strings.Builder",
}

// Analyzer implements lint.Analyzer over the configured packages.
type Analyzer struct {
	// Packages are segment-boundary patterns selecting where the check
	// applies.
	Packages []string
}

// New returns an errdrop analyzer scoped to the given package patterns,
// defaulting to DefaultPackages.
func New(packages []string) *Analyzer {
	if packages == nil {
		packages = DefaultPackages
	}
	return &Analyzer{Packages: packages}
}

// Name implements lint.Analyzer.
func (*Analyzer) Name() string { return "errdrop" }

// Doc implements lint.Analyzer.
func (*Analyzer) Doc() string {
	return "Write/Flush/Close/Sync errors in persistence packages must be handled or explicitly discarded"
}

// Run implements lint.Analyzer.
func (a *Analyzer) Run(pkg *lint.Package) []lint.Finding {
	if !lint.MatchAny(a.Packages, pkg.Path) {
		return nil
	}
	var out []lint.Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Only a bare expression statement discards implicitly;
			// `_ = f.Close()` is a visible, deliberate discard and
			// `defer f.Close()` is exempt by design.
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := a.droppedError(pkg, call); ok {
				out = append(out, lint.Finding{
					Pos:     pkg.Fset.Position(call.Pos()),
					Rule:    "errdrop",
					Message: name + " error discarded; handle it or discard explicitly with _ =",
				})
			}
			return true
		})
	}
	return out
}

// droppedError reports whether call is a checked durability method whose
// error result is being dropped, returning the rendered callee for the
// message.
func (a *Analyzer) droppedError(pkg *lint.Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !checkedMethods[sel.Sel.Name] {
		return "", false
	}
	// Skip calls through never-failing receivers (hash writers etc.).
	if rt := pkg.Info.Types[sel.X].Type; rt != nil {
		s := strings.TrimPrefix(rt.String(), "*")
		for _, nf := range neverFails {
			if s == nf {
				return "", false
			}
		}
	}
	// Require the call to actually return an error; with partial type
	// info, fall back to flagging by name.
	if tv, ok := pkg.Info.Types[call]; ok && tv.Type != nil {
		if !returnsError(tv.Type) {
			return "", false
		}
	}
	return types.ExprString(call.Fun), true
}

// returnsError reports whether a call result type includes an error.
func returnsError(t types.Type) bool {
	isErr := func(t types.Type) bool {
		n, ok := t.(*types.Named)
		return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErr(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErr(t)
}
