package errdrop_test

import (
	"testing"

	"asterixfeeds/internal/lint/errdrop"
	"asterixfeeds/internal/lint/linttest"
)

// TestFixture asserts the four dropped durability errors in bad.go are
// flagged while hash writes, explicit `_ =` discards, deferred closes,
// and fully checked paths in good.go stay clean.
func TestFixture(t *testing.T) {
	linttest.RunGolden(t, "errdropmod", errdrop.New(nil))
}
