// Package hooknil enforces the nil-safe hook contract interprocedurally:
// every call through an optional hook field (lsm.Options.FaultHook,
// hyracks.Config.FrameObserver, core.Options.Registry's gauge funcs, …)
// must be dominated by a nil check, or live inside a function declared as
// a nil-safe wrapper.
//
// A func-typed struct field counts as *optional* when the module itself
// treats it as such — it is compared against nil somewhere (directly or
// through a local copy). Mandatory callbacks that no code nil-checks are
// left alone. The interprocedural part is parameter tracking: passing an
// unchecked hook into a helper taints the helper's parameter, and any
// unguarded call of a tainted parameter is reported at the dereference,
// however many calls deep — the exact shape feedlint's single-function
// checks could not see.
//
// Wrapper declaration: a function whose doc comment (or a line inside
// it) carries `//feedlint:nilsafe` may call hooks and tainted parameters
// unguarded; it is the declared owner of the nil contract. The analyzer
// also accepts a per-package wrapper table via New.
package hooknil

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"asterixfeeds/internal/lint"
	"asterixfeeds/internal/lint/ipa"
)

// nilsafeDirective marks a declared nil-safe wrapper function.
const nilsafeDirective = "//feedlint:nilsafe"

// Analyzer implements lint.ModuleAnalyzer.
type Analyzer struct {
	// Wrappers maps package patterns (lint.MatchPath) to function names
	// treated as declared nil-safe wrappers, in addition to functions
	// carrying the //feedlint:nilsafe directive.
	Wrappers map[string][]string
}

// New returns a hooknil analyzer with the given per-package wrapper
// table (nil is fine: the directive still works).
func New(wrappers map[string][]string) *Analyzer { return &Analyzer{Wrappers: wrappers} }

// Name implements lint.Analyzer.
func (*Analyzer) Name() string { return "hooknil" }

// Doc implements lint.Analyzer.
func (*Analyzer) Doc() string {
	return "calls through optional hook fields must be nil-checked, even across helper calls"
}

// hookField identifies an optional func-typed struct field.
type fieldKey struct {
	owner string // qualified defining type
	name  string
}

func (k fieldKey) String() string {
	owner := k.owner
	if i := strings.LastIndexByte(owner, '/'); i >= 0 {
		owner = owner[i+1:]
	}
	return owner + "." + k.name
}

type checker struct {
	prog     *ipa.Program
	analyzer *Analyzer
	// optional is the module-wide set of func-typed struct fields with
	// nil-check evidence, keyed by the field object.
	optional map[*types.Var]fieldKey
	// nilsafe marks declared wrapper functions.
	nilsafe map[*ipa.Func]bool

	// paramCalls records unguarded calls of func-typed parameters:
	// findings-in-waiting, confirmed if the parameter turns out tainted.
	paramCalls []paramCall
	// taints records maybe-nil arguments flowing into parameters.
	taints []taint
	// paramsOf caches signature params per function.
	findings []lint.Finding
}

type paramCall struct {
	fn   *ipa.Func
	idx  int
	pos  token.Position
	name string
}

// taint is one call edge passing a maybe-nil hook value into a parameter.
type taint struct {
	target *ipa.Func
	idx    int
	// viaParam: the argument was itself a parameter of the caller (taint
	// propagates only if that parameter is tainted); otherwise the
	// argument was an unchecked hook field.
	caller    *ipa.Func
	callerIdx int
	viaParam  bool
	field     fieldKey // valid when !viaParam
	pos       token.Position
}

// RunModule implements lint.ModuleAnalyzer.
func (a *Analyzer) RunModule(pkgs []*lint.Package) []lint.Finding {
	prog := ipa.For(pkgs)
	c := &checker{prog: prog, analyzer: a, optional: collectOptionalFields(pkgs), nilsafe: make(map[*ipa.Func]bool)}
	for _, fn := range prog.SortedFuncs() {
		if c.isDeclaredNilsafe(fn) {
			c.nilsafe[fn] = true
		}
	}
	for _, fn := range prog.SortedFuncs() {
		c.checkFunc(fn)
	}
	c.resolveTaints()
	return c.findings
}

// collectOptionalFields finds every func-typed struct field the module
// nil-checks anywhere, directly (x.F == nil) or through a local copy
// (f := x.F; f != nil), plus fields explicitly assigned nil.
func collectOptionalFields(pkgs []*lint.Package) map[*types.Var]fieldKey {
	optional := make(map[*types.Var]fieldKey)
	mark := func(pkg *lint.Package, e ast.Expr) {
		if v, key, ok := hookFieldAt(pkg, e); ok {
			optional[v] = key
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			// origins maps local variable objects to the hook-field
			// expression they were last assigned from, file-wide; scoping
			// is approximated, which only ever widens the optional set.
			origins := make(map[types.Object]ast.Expr)
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break
						}
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						obj := pkg.Info.Defs[id]
						if obj == nil {
							obj = pkg.Info.Uses[id]
						}
						if obj == nil {
							continue
						}
						if _, _, ok := hookFieldAt(pkg, n.Rhs[i]); ok {
							origins[obj] = n.Rhs[i]
						}
					}
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					for _, pair := range [][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
						if isNil(pkg, pair[1]) {
							mark(pkg, pair[0])
							if id, ok := ast.Unparen(pair[0]).(*ast.Ident); ok {
								if origin, ok := origins[pkg.Info.Uses[id]]; ok {
									mark(pkg, origin)
								}
							}
						}
					}
				}
				return true
			})
		}
	}
	return optional
}

// hookFieldAt reports whether e reads a func-typed struct field, and its
// identity.
func hookFieldAt(pkg *lint.Package, e ast.Expr) (*types.Var, fieldKey, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, fieldKey{}, false
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil, fieldKey{}, false
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok {
		return nil, fieldKey{}, false
	}
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return nil, fieldKey{}, false
	}
	owner := "?"
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if n, ok := recv.(*types.Named); ok {
		owner = n.Obj().Name()
		if n.Obj().Pkg() != nil {
			owner = n.Obj().Pkg().Path() + "." + owner
		}
	}
	return v, fieldKey{owner: owner, name: v.Name()}, true
}

func isNil(pkg *lint.Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.IsNil()
}

func (c *checker) isDeclaredNilsafe(fn *ipa.Func) bool {
	if fn.Decl.Doc != nil {
		for _, l := range fn.Decl.Doc.List {
			if strings.HasPrefix(strings.TrimSpace(l.Text), nilsafeDirective) {
				return true
			}
		}
	}
	for pat, names := range c.analyzer.Wrappers {
		if lint.MatchPath(pat, fn.Pkg.Path) {
			for _, name := range names {
				if fn.Obj.Name() == name {
					return true
				}
			}
		}
	}
	return false
}

// state is the per-path guard state: which expressions (by canonical
// text) and which local objects are proven non-nil here.
type state struct {
	text map[string]bool
	obj  map[types.Object]bool
	// origin maps local objects to the hook field they alias.
	origin map[types.Object]*types.Var
}

func newState() *state {
	return &state{text: map[string]bool{}, obj: map[types.Object]bool{}, origin: map[types.Object]*types.Var{}}
}

func (st *state) clone() *state {
	c := newState()
	for k, v := range st.text {
		c.text[k] = v
	}
	for k, v := range st.obj {
		c.obj[k] = v
	}
	for k, v := range st.origin {
		c.origin[k] = v
	}
	return c
}

// checkFunc walks one function, flagging unguarded hook-field calls and
// recording parameter facts for the taint fixpoint.
func (c *checker) checkFunc(fn *ipa.Func) {
	params := make(map[types.Object]int)
	if sig, ok := fn.Obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			if _, isFunc := sig.Params().At(i).Type().Underlying().(*types.Signature); isFunc {
				params[sig.Params().At(i)] = i
			}
		}
	}
	c.walkStmts(fn, fn.Decl.Body.List, newState(), params)
}

func (c *checker) walkStmts(fn *ipa.Func, stmts []ast.Stmt, st *state, params map[types.Object]int) {
	for _, s := range stmts {
		c.walkStmt(fn, s, st, params)
	}
}

func (c *checker) walkStmt(fn *ipa.Func, s ast.Stmt, st *state, params map[types.Object]int) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.walkExpr(fn, s.X, st, params)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.walkExpr(fn, e, st, params)
		}
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := fn.Pkg.Info.Defs[id]
			if obj == nil {
				obj = fn.Pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			// Any assignment invalidates previous provenness.
			delete(st.obj, obj)
			delete(st.origin, obj)
			if i < len(s.Rhs) {
				if v, _, ok := hookFieldAt(fn.Pkg, s.Rhs[i]); ok {
					if _, optional := c.optional[v]; optional {
						st.origin[obj] = v
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.walkExpr(fn, e, st, params)
		}
	case *ast.IncDecStmt:
		c.walkExpr(fn, s.X, st, params)
	case *ast.SendStmt:
		c.walkExpr(fn, s.Chan, st, params)
		c.walkExpr(fn, s.Value, st, params)
	case *ast.GoStmt:
		c.walkExpr(fn, s.Call, st.clone(), params)
	case *ast.DeferStmt:
		c.walkExpr(fn, s.Call, st.clone(), params)
	case *ast.BlockStmt:
		c.walkStmts(fn, s.List, st.clone(), params)
	case *ast.IfStmt:
		inner := st.clone()
		if s.Init != nil {
			c.walkStmt(fn, s.Init, inner, params)
		}
		c.walkExpr(fn, s.Cond, inner, params)
		thenState := inner.clone()
		c.applyCond(fn, s.Cond, thenState, true)
		c.walkStmts(fn, s.Body.List, thenState, params)
		elseState := inner.clone()
		c.applyCond(fn, s.Cond, elseState, false)
		if s.Else != nil {
			c.walkStmt(fn, s.Else, elseState, params)
		}
		// `if x == nil { return }` proves x for the rest of the body.
		if terminates(s.Body) {
			c.applyCond(fn, s.Cond, st, false)
		}
	case *ast.ForStmt:
		inner := st.clone()
		if s.Init != nil {
			c.walkStmt(fn, s.Init, inner, params)
		}
		if s.Cond != nil {
			c.walkExpr(fn, s.Cond, inner, params)
			c.applyCond(fn, s.Cond, inner, true)
		}
		c.walkStmts(fn, s.Body.List, inner, params)
	case *ast.RangeStmt:
		c.walkExpr(fn, s.X, st, params)
		c.walkStmts(fn, s.Body.List, st.clone(), params)
	case *ast.LabeledStmt:
		c.walkStmt(fn, s.Stmt, st, params)
	case *ast.SwitchStmt:
		inner := st.clone()
		if s.Init != nil {
			c.walkStmt(fn, s.Init, inner, params)
		}
		if s.Tag != nil {
			c.walkExpr(fn, s.Tag, inner, params)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(fn, cc.Body, inner.clone(), params)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(fn, cc.Body, st.clone(), params)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.walkStmt(fn, cc.Comm, st.clone(), params)
				}
				c.walkStmts(fn, cc.Body, st.clone(), params)
			}
		}
	}
}

// applyCond folds a condition into the guard state. branch=true is the
// then-branch: `x != nil` (and conjunctions of such) prove x there.
// branch=false is the else/fallthrough side: `x == nil` (and
// disjunctions) prove x there.
func (c *checker) applyCond(fn *ipa.Func, cond ast.Expr, st *state, branch bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if branch {
				c.applyCond(fn, e.X, st, true)
				c.applyCond(fn, e.Y, st, true)
			}
			return
		case token.LOR:
			if !branch {
				c.applyCond(fn, e.X, st, false)
				c.applyCond(fn, e.Y, st, false)
			}
			return
		case token.NEQ, token.EQL:
			want := token.NEQ
			if !branch {
				want = token.EQL
			}
			if e.Op != want {
				return
			}
			for _, pair := range [][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
				if isNil(fn.Pkg, pair[1]) {
					c.prove(fn, pair[0], st)
				}
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			c.applyCond(fn, e.X, st, !branch)
		}
	}
}

func (c *checker) prove(fn *ipa.Func, e ast.Expr, st *state) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := fn.Pkg.Info.Uses[id]; obj != nil {
			st.obj[obj] = true
			return
		}
	}
	st.text[types.ExprString(e)] = true
}

// terminates reports whether a block always leaves the enclosing scope
// (return, panic, os.Exit, continue, break, goto).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				return fun.Sel.Name == "Exit" || fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Goexit"
			}
		}
	}
	return false
}

// walkExpr checks calls inside one expression, in evaluation order.
func (c *checker) walkExpr(fn *ipa.Func, e ast.Expr, st *state, params map[types.Object]int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closure bodies run with unknown guard state; analyze
			// conservatively from scratch (fields proven outside may have
			// changed by call time).
			c.walkStmts(fn, n.Body.List, newState(), params)
			return false
		case *ast.CallExpr:
			c.checkCall(fn, n, st, params)
			for _, arg := range n.Args {
				c.walkExpr(fn, arg, st, params)
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				c.walkStmts(fn, lit.Body.List, newState(), params)
			}
			return false
		}
		return true
	})
}

// checkCall inspects one call: a call *through* a hook value must be
// guarded; a call *passing* hook values taints the callee's parameters.
func (c *checker) checkCall(fn *ipa.Func, call *ast.CallExpr, st *state, params map[types.Object]int) {
	pos := fn.Pkg.Fset.Position(call.Pos())
	funExpr := ast.Unparen(call.Fun)

	// Call through a hook field: x.F(...).
	if v, key, ok := hookFieldAt(fn.Pkg, funExpr); ok {
		if _, optional := c.optional[v]; optional && !c.nilsafe[fn] {
			if !st.text[types.ExprString(funExpr)] {
				c.findings = append(c.findings, lint.Finding{
					Pos:  pos,
					Rule: "hooknil",
					Message: fmt.Sprintf("call through optional hook field %s is not nil-checked on this path; guard it or declare a %s wrapper",
						key, nilsafeDirective),
				})
			}
		}
	}

	// Call through a local or parameter: f(...).
	if id, ok := funExpr.(*ast.Ident); ok {
		obj := fn.Pkg.Info.Uses[id]
		if obj != nil && !st.obj[obj] && !c.nilsafe[fn] {
			if origin, ok := st.origin[obj]; ok {
				key := c.optional[origin]
				c.findings = append(c.findings, lint.Finding{
					Pos:  pos,
					Rule: "hooknil",
					Message: fmt.Sprintf("call through %s (copy of optional hook field %s) is not nil-checked on this path",
						id.Name, key),
				})
			} else if idx, isParam := params[obj]; isParam {
				c.paramCalls = append(c.paramCalls, paramCall{fn: fn, idx: idx, pos: pos, name: id.Name})
			}
		}
	}

	// Arguments: hook fields or func params flowing into callees.
	targets := c.prog.TargetsOf(call)
	if len(targets) == 0 {
		return
	}
	for j, arg := range call.Args {
		argE := ast.Unparen(arg)
		if v, key, ok := hookFieldAt(fn.Pkg, argE); ok {
			if _, optional := c.optional[v]; optional && !st.text[types.ExprString(argE)] {
				for _, target := range targets {
					c.taints = append(c.taints, taint{target: target, idx: j, field: key, pos: pos})
				}
			}
			continue
		}
		if id, ok := argE.(*ast.Ident); ok {
			obj := fn.Pkg.Info.Uses[id]
			if obj == nil || st.obj[obj] {
				continue
			}
			if origin, ok := st.origin[obj]; ok {
				key := c.optional[origin]
				for _, target := range targets {
					c.taints = append(c.taints, taint{target: target, idx: j, field: key, pos: pos})
				}
			} else if idx, isParam := params[obj]; isParam {
				for _, target := range targets {
					c.taints = append(c.taints, taint{target: target, idx: j, caller: fn, callerIdx: idx, viaParam: true, pos: pos})
				}
			}
		}
	}
}

// resolveTaints runs the maybe-nil fixpoint over parameter taints and
// converts unguarded calls of tainted parameters into findings.
func (c *checker) resolveTaints() {
	type pk struct {
		fn  *ipa.Func
		idx int
	}
	tainted := make(map[pk]fieldKey)
	for changed := true; changed; {
		changed = false
		for _, t := range c.taints {
			key := pk{t.target, t.idx}
			if _, ok := tainted[key]; ok {
				continue
			}
			if !t.viaParam {
				tainted[key] = t.field
				changed = true
			} else if field, ok := tainted[pk{t.caller, t.callerIdx}]; ok {
				tainted[key] = field
				changed = true
			}
		}
	}
	for _, pc := range c.paramCalls {
		if c.nilsafe[pc.fn] {
			continue
		}
		if field, ok := tainted[pk{pc.fn, pc.idx}]; ok {
			c.findings = append(c.findings, lint.Finding{
				Pos:  pc.pos,
				Rule: "hooknil",
				Message: fmt.Sprintf("parameter %s may be nil (receives optional hook field %s from a caller) and is called without a nil check",
					pc.name, field),
			})
		}
	}
	sort.Slice(c.findings, func(i, j int) bool {
		a, b := c.findings[i], c.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
}
