package hooknil_test

import (
	"testing"

	"asterixfeeds/internal/lint/hooknil"
	"asterixfeeds/internal/lint/linttest"
)

func TestHooknilFixture(t *testing.T) {
	linttest.RunGolden(t, "hooknilmod", hooknil.New(nil))
}

func TestHooknilCleanFixture(t *testing.T) {
	pkgs, root := linttest.Fixture(t, "cleanmod")
	findings := hooknil.New(nil).RunModule(pkgs)
	if out := linttest.Format(root, findings); out != "" {
		t.Errorf("hooknil reported findings on the clean fixture:\n%s", out)
	}
}
