package lockorder_test

import (
	"testing"

	"asterixfeeds/internal/lint/linttest"
	"asterixfeeds/internal/lint/lockorder"
)

func TestLockorderFixture(t *testing.T) {
	linttest.RunGolden(t, "lockordermod", lockorder.New())
}

func TestLockorderCleanFixture(t *testing.T) {
	pkgs, root := linttest.Fixture(t, "cleanmod")
	findings := lockorder.New().RunModule(pkgs)
	if out := linttest.Format(root, findings); out != "" {
		t.Errorf("lockorder reported findings on the clean fixture:\n%s", out)
	}
}
