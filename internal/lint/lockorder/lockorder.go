// Package lockorder builds the module's global lock-acquisition graph and
// enforces two invariants mutexcheck cannot see across function
// boundaries:
//
//  1. lock acquisition order forms a DAG. An edge A → B exists when any
//     path acquires B (directly or through any chain of calls, including
//     interface dispatch) while holding A; a cycle means two goroutines
//     can acquire the locks in opposite orders and deadlock. This is the
//     lockdep approach, keyed by struct field rather than lock instance.
//  2. no path holds a sync.Mutex/RWMutex into a blocking operation — a
//     channel send, select, WaitGroup.Wait, Cond.Wait, or file Sync
//     reached through a call chain. (Direct sends under a held lock are
//     mutexcheck's finding; lockorder owns everything deeper.)
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"asterixfeeds/internal/lint"
	"asterixfeeds/internal/lint/ipa"
)

// Analyzer implements lint.ModuleAnalyzer.
type Analyzer struct{}

// New returns the lockorder analyzer.
func New() *Analyzer { return &Analyzer{} }

// Name implements lint.Analyzer.
func (*Analyzer) Name() string { return "lockorder" }

// Doc implements lint.Analyzer.
func (*Analyzer) Doc() string {
	return "lock-order cycles (deadlock risk) and locks held into blocking operations, across call chains"
}

// reportedKinds are the blocking kinds flagged under a held lock — the
// rule's exact scope: channel sends, Waits, and file Syncs. Receives and
// default-less selects are summarized by ipa but deliberately not
// reported: the feed stack legitimately holds short critical sections
// around receives, and graceful-teardown selects bound their blocking
// with timeout cases the summary cannot see.
var reportedKinds = map[string]bool{
	ipa.KindSend:     true,
	ipa.KindWGWait:   true,
	ipa.KindCondWait: true,
	ipa.KindSync:     true,
}

// edge is one observed acquisition ordering: To acquired while From held.
type edge struct {
	from, to ipa.LockKey
	pos      token.Position
	fn       string // display name of the function establishing the edge
	via      string // call chain when the acquisition is transitive
}

type scanner struct {
	prog     *ipa.Program
	pkg      *lint.Package
	fn       *ipa.Func
	edges    *map[[2]ipa.LockKey]*edge
	findings *[]lint.Finding
	seen     map[string]bool // dedup of held-into-blocking findings
}

// RunModule implements lint.ModuleAnalyzer.
func (a *Analyzer) RunModule(pkgs []*lint.Package) []lint.Finding {
	prog := ipa.For(pkgs)
	edges := make(map[[2]ipa.LockKey]*edge)
	var findings []lint.Finding
	seen := make(map[string]bool)
	for _, fn := range prog.SortedFuncs() {
		s := &scanner{prog: prog, pkg: fn.Pkg, fn: fn, edges: &edges, findings: &findings, seen: seen}
		s.scanStmts(fn.Decl.Body.List, make(heldSet))
	}
	findings = append(findings, cycleFindings(edges)...)
	return findings
}

// heldSet tracks which abstract locks are held at a program point.
type heldSet map[ipa.LockKey]*heldLock

type heldLock struct {
	expr string
	read bool
	pos  token.Position
}

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (s *scanner) scanStmts(stmts []ast.Stmt, held heldSet) {
	for _, st := range stmts {
		s.scanStmt(st, held)
	}
}

// scanStmt walks one statement in source order, mirroring mutexcheck's
// state discipline: compound statements get a copy of the held set
// (assumed lock-balanced), and a deferred Unlock keeps the lock held to
// the end of the body.
func (s *scanner) scanStmt(st ast.Stmt, held heldSet) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		s.processExpr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.processExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.processExpr(e, held)
		}
	case *ast.IncDecStmt:
		s.processExpr(st.X, held)
	case *ast.SendStmt:
		// The direct send-under-lock finding belongs to mutexcheck; calls
		// inside the operands still matter here.
		s.processExpr(st.Chan, held)
		s.processExpr(st.Value, held)
	case *ast.GoStmt:
		// The goroutine runs under its own (empty) lock state, and the
		// spawned call's effects are not the spawner's.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.scanStmts(lit.Body.List, make(heldSet))
		}
	case *ast.DeferStmt:
		// defer x.Unlock() is ignored (the lock stays held to the end of
		// the body); any other deferred work runs while every lock whose
		// unlock is also deferred is still held — LIFO order means a
		// defer registered after `defer mu.Unlock()` executes before the
		// unlock. Scanning the deferred call with the current held state
		// is the approximation that catches `defer f.Sync()` after
		// `defer mu.Unlock()`.
		if op, ok := ipa.LockOpAt(s.pkg, st.Call); ok && !op.Acquire {
			return
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.scanStmts(lit.Body.List, held.clone())
			return
		}
		s.processExpr(st.Call, held)
	case *ast.BlockStmt:
		s.scanStmts(st.List, held.clone())
	case *ast.IfStmt:
		inner := held.clone()
		if st.Init != nil {
			s.scanStmt(st.Init, inner)
		}
		s.processExpr(st.Cond, inner)
		s.scanStmts(st.Body.List, inner.clone())
		if st.Else != nil {
			s.scanStmt(st.Else, inner.clone())
		}
	case *ast.ForStmt:
		inner := held.clone()
		if st.Init != nil {
			s.scanStmt(st.Init, inner)
		}
		if st.Cond != nil {
			s.processExpr(st.Cond, inner)
		}
		s.scanStmts(st.Body.List, inner)
	case *ast.RangeStmt:
		s.processExpr(st.X, held)
		s.scanStmts(st.Body.List, held.clone())
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt, held)
	case *ast.SwitchStmt:
		inner := held.clone()
		if st.Init != nil {
			s.scanStmt(st.Init, inner)
		}
		if st.Tag != nil {
			s.processExpr(st.Tag, inner)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, inner.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.scanStmts(cc.Body, held.clone())
			}
		}
	}
}

// processExpr applies lock-state and edge effects of every call inside
// one expression, in source order. Function literals are scanned under a
// fresh lock state (they run later) except immediately-invoked ones,
// which inherit the current state.
func (s *scanner) processExpr(e ast.Expr, held heldSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.scanStmts(n.Body.List, make(heldSet))
			return false
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately invoked: body runs here, under held locks.
				for _, arg := range n.Args {
					s.processExpr(arg, held)
				}
				s.scanStmts(lit.Body.List, held.clone())
				return false
			}
			// Arguments evaluate before the call.
			for _, arg := range n.Args {
				s.processExpr(arg, held)
			}
			s.processCall(n, held)
			return false
		}
		return true
	})
}

// processCall handles one resolved call: lock ops mutate the held set;
// blocking calls and callee summaries are checked against it.
func (s *scanner) processCall(call *ast.CallExpr, held heldSet) {
	pos := s.pkg.Fset.Position(call.Pos())
	if op, ok := ipa.LockOpAt(s.pkg, call); ok {
		if op.Acquire {
			if op.Key.Global() {
				for from, info := range held {
					s.addEdge(from, op.Key, pos, info, "")
				}
			}
			held[op.Key] = &heldLock{expr: op.Expr, read: op.Read, pos: pos}
		} else {
			delete(held, op.Key)
		}
		return
	}
	if kind, ok := ipa.BlockingCallAt(s.pkg, call); ok {
		if reportedKinds[kind] {
			for key, info := range held {
				if kind == ipa.KindCondWait && s.condOwnLock(call, key) {
					continue
				}
				s.reportOnce(key, pos, kind, pos, fmt.Sprintf("%s while holding %s (locked at line %d); a stall here freezes every path needing the lock",
					kind, info.expr, info.pos.Line))
			}
		}
		return
	}
	for _, target := range s.prog.TargetsOf(call) {
		if target.Obj == s.fn.Obj {
			continue
		}
		for _, key := range target.Summary.SortedAcquires() {
			site := target.Summary.Acquires[key]
			for from, info := range held {
				s.addEdge(from, key, pos, info, target.Display()+site.Via())
			}
		}
		if len(held) == 0 {
			continue
		}
		kinds := make([]string, 0, len(target.Summary.Blocks))
		for kind := range target.Summary.Blocks {
			if reportedKinds[kind] {
				kinds = append(kinds, kind)
			}
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			site := target.Summary.Blocks[kind]
			for key, info := range held {
				if kind == ipa.KindCondWait && site.CondKey.Global() && s.prog.CondBinding[site.CondKey] == key {
					// Waiting on a cond while holding the lock the cond was
					// constructed over is the mandatory sync.Cond protocol,
					// not a hazard.
					continue
				}
				s.reportOnce(key, site.Pos, kind, pos, fmt.Sprintf("call to %s may block (%s at %s:%d%s) while holding %s (locked at line %d)",
					target.Display(), kind, baseName(site.Pos.Filename), site.Pos.Line, site.Via(), info.expr, info.pos.Line))
			}
		}
	}
}

// condOwnLock reports whether a direct cond.Wait() call waits on a cond
// bound (via sync.NewCond) to the held lock key — the mandatory pattern.
func (s *scanner) condOwnLock(call *ast.CallExpr, held ipa.LockKey) bool {
	ck, ok := ipa.CondVarKey(s.pkg, call)
	return ok && ck.Global() && s.prog.CondBinding[ck] == held
}

func (s *scanner) addEdge(from, to ipa.LockKey, pos token.Position, info *heldLock, via string) {
	if from == to && info.read {
		// Re-acquiring the same read lock through a helper is benign in
		// this codebase's idiom; write self-edges stay fatal.
		return
	}
	k := [2]ipa.LockKey{from, to}
	if (*s.edges)[k] == nil {
		(*s.edges)[k] = &edge{from: from, to: to, pos: pos, fn: s.fn.Display(), via: via}
	}
}

// reportOnce emits one held-into-blocking finding per (held lock,
// ultimate blocking site, kind) triple, module-wide. Many callers funnel
// into the same deep blocking operation under the same lock; the first
// caller (in deterministic scan order) anchors the finding and the rest
// add nothing actionable.
func (s *scanner) reportOnce(held ipa.LockKey, site token.Position, kind string, pos token.Position, msg string) {
	key := fmt.Sprintf("%s|%s:%d|%s", held, site.Filename, site.Line, kind)
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	*s.findings = append(*s.findings, lint.Finding{Pos: pos, Rule: "lockorder", Message: msg})
}

func baseName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}

// cycleFindings reports every strongly connected component of the
// acquisition graph that contains a cycle, once, anchored at its
// lexically smallest edge.
func cycleFindings(edges map[[2]ipa.LockKey]*edge) []lint.Finding {
	adj := make(map[ipa.LockKey][]*edge)
	var nodes []ipa.LockKey
	seenNode := make(map[ipa.LockKey]bool)
	addNode := func(k ipa.LockKey) {
		if !seenNode[k] {
			seenNode[k] = true
			nodes = append(nodes, k)
		}
	}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
		addNode(e.from)
		addNode(e.to)
	}
	sort.Slice(nodes, func(i, j int) bool { return lockKeyLess(nodes[i], nodes[j]) })
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool { return lockKeyLess(es[i].to, es[j].to) })
	}

	sccs := tarjan(nodes, adj)
	var out []lint.Finding
	for _, scc := range sccs {
		inSCC := make(map[ipa.LockKey]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		var cyc []*edge
		for _, n := range scc {
			for _, e := range adj[n] {
				if inSCC[e.to] && (len(scc) > 1 || e.from == e.to) {
					cyc = append(cyc, e)
				}
			}
		}
		if len(cyc) == 0 {
			continue
		}
		sort.Slice(cyc, func(i, j int) bool { return posLess(cyc[i].pos, cyc[j].pos) })
		msg := "lock-order cycle (deadlock risk): "
		for i, e := range cyc {
			if i > 0 {
				msg += "; "
			}
			msg += fmt.Sprintf("%s → %s in %s at %s:%d", e.from, e.to, e.fn, baseName(e.pos.Filename), e.pos.Line)
			if e.via != "" {
				msg += " (via " + e.via + ")"
			}
		}
		out = append(out, lint.Finding{Pos: cyc[0].pos, Rule: "lockorder", Message: msg})
	}
	return out
}

func lockKeyLess(a, b ipa.LockKey) bool {
	if a.Owner != b.Owner {
		return a.Owner < b.Owner
	}
	return a.Field < b.Field
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	return a.Line < b.Line
}

// tarjan computes strongly connected components over the lock graph,
// iteratively, in deterministic node order.
func tarjan(nodes []ipa.LockKey, adj map[ipa.LockKey][]*edge) [][]ipa.LockKey {
	index := make(map[ipa.LockKey]int)
	low := make(map[ipa.LockKey]int)
	onStack := make(map[ipa.LockKey]bool)
	var stack []ipa.LockKey
	var sccs [][]ipa.LockKey
	next := 0

	type frame struct {
		node ipa.LockKey
		ei   int
	}
	for _, start := range nodes {
		if _, ok := index[start]; ok {
			continue
		}
		frames := []frame{{node: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.node]) {
				e := adj[f.node][f.ei]
				f.ei++
				w := e.to
				if _, ok := index[w]; !ok {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// Node finished.
			if low[f.node] == index[f.node] {
				var scc []ipa.LockKey
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.node {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return lockKeyLess(scc[i], scc[j]) })
				sccs = append(sccs, scc)
			}
			child := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[child] < low[parent.node] {
					low[parent.node] = low[child]
				}
			}
		}
	}
	return sccs
}
