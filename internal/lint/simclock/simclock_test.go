package simclock_test

import (
	"testing"

	"asterixfeeds/internal/lint/linttest"
	"asterixfeeds/internal/lint/simclock"
)

// TestFixture asserts the direct time.Now/time.Since calls and the
// global rand draw in bad.go are flagged, while the nowFunc hook, the
// seeded generator, and the //feedlint:allow-directive site in good.go
// stay clean.
func TestFixture(t *testing.T) {
	linttest.RunGolden(t, "simclockmod", simclock.New(nil))
}
