// Package simclock keeps the simulated-cluster paths deterministic. The
// Chapter-7 experiments only reproduce when the feed runtime
// (internal/core) and the simulated Hyracks cluster (internal/hyracks)
// read time and randomness through swappable hooks, so this analyzer flags
// direct time.Now()/time.Since() calls and global math/rand draws there.
//
// The sanctioned escape hatch is a named indirection point: assigning the
// function value (`var nowFunc = time.Now`) is allowed — it IS the hook —
// while scattered call sites are violations. Seeded instances via
// rand.New(rand.NewSource(seed)) are likewise allowed; only the
// process-global generator is not.
package simclock

import (
	"go/ast"
	"go/types"

	"asterixfeeds/internal/lint"
)

// DefaultPackages are the determinism-critical packages. internal/metrics
// is included because rate windows and latency reservoirs are timestamped:
// every read must go through the package's nowFunc hook or deterministic
// replays would observe wall-clock-dependent rates. internal/governor is
// included because token-bucket refills and the pressure cache are
// timestamped the same way.
var DefaultPackages = []string{"internal/core", "internal/governor", "internal/hyracks", "internal/metrics"}

// clockFuncs are the time package functions that read the real clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRandFuncs are math/rand package functions that construct seeded
// generators rather than drawing from the global one.
var allowedRandFuncs = map[string]bool{"New": true, "NewSource": true}

// Analyzer implements lint.Analyzer over the configured packages.
type Analyzer struct {
	// Packages are segment-boundary patterns selecting where the check
	// applies.
	Packages []string
}

// New returns a simclock analyzer scoped to the given package patterns,
// defaulting to DefaultPackages.
func New(packages []string) *Analyzer {
	if packages == nil {
		packages = DefaultPackages
	}
	return &Analyzer{Packages: packages}
}

// Name implements lint.Analyzer.
func (*Analyzer) Name() string { return "simclock" }

// Doc implements lint.Analyzer.
func (*Analyzer) Doc() string {
	return "simulated-cluster packages must not call time.Now/Since or the global math/rand directly"
}

// Run implements lint.Analyzer.
func (a *Analyzer) Run(pkg *lint.Package) []lint.Finding {
	if !lint.MatchAny(a.Packages, pkg.Path) {
		return nil
	}
	var out []lint.Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch pkgPathOf(pkg, id) {
			case "time":
				if clockFuncs[sel.Sel.Name] {
					out = append(out, lint.Finding{
						Pos:     pkg.Fset.Position(call.Pos()),
						Rule:    "simclock",
						Message: "direct time." + sel.Sel.Name + "() in a simulated-cluster path; read time through the package clock hook",
					})
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[sel.Sel.Name] {
					out = append(out, lint.Finding{
						Pos:     pkg.Fset.Position(call.Pos()),
						Rule:    "simclock",
						Message: "global rand." + sel.Sel.Name + "() in a simulated-cluster path; use a seeded *rand.Rand",
					})
				}
			}
			return true
		})
	}
	return out
}

// pkgPathOf resolves an identifier to the import path of the package it
// names, or "" when it is not a package name. It prefers type info and
// falls back to matching the file's imports syntactically.
func pkgPathOf(pkg *lint.Package, id *ast.Ident) string {
	if obj, ok := pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return ""
	}
	// Syntactic fallback: an unresolved qualified identifier whose name
	// matches a plain import of time or math/rand.
	switch id.Name {
	case "time":
		return "time"
	case "rand":
		return "math/rand"
	}
	return ""
}
