// Package all is the feedlint analyzer registry: the single list every
// consumer — cmd/feedlint, the framework's own repo-wide tests — pulls
// from, so an analyzer wired here is wired everywhere. A test in this
// package enumerates the analyzer source directories and fails if one is
// missing from the list.
package all

import (
	"asterixfeeds/internal/lint"
	"asterixfeeds/internal/lint/archrule"
	"asterixfeeds/internal/lint/chanhygiene"
	"asterixfeeds/internal/lint/errdrop"
	"asterixfeeds/internal/lint/goleak"
	"asterixfeeds/internal/lint/hooknil"
	"asterixfeeds/internal/lint/lockorder"
	"asterixfeeds/internal/lint/mutexcheck"
	"asterixfeeds/internal/lint/simclock"
)

// Analyzers returns the full suite with default configuration, in the
// order findings groups print.
func Analyzers() []lint.Analyzer {
	return []lint.Analyzer{
		archrule.New(nil),
		mutexcheck.New(),
		goleak.New(nil),
		errdrop.New(nil),
		simclock.New(nil),
		lockorder.New(),
		hooknil.New(nil),
		chanhygiene.New(),
	}
}
