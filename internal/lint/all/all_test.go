package all_test

import (
	"os"
	"strings"
	"testing"

	"asterixfeeds/internal/lint/all"
)

// nonAnalyzerDirs are internal/lint subdirectories that do not implement
// an analyzer.
var nonAnalyzerDirs = map[string]bool{
	"all":      true,
	"ipa":      true,
	"linttest": true,
	"testdata": true,
}

// TestEveryAnalyzerRegistered enumerates internal/lint's analyzer
// directories and asserts each one appears in the registry, so adding an
// analyzer package without wiring it into feedlint fails CI.
func TestEveryAnalyzerRegistered(t *testing.T) {
	entries, err := os.ReadDir("..")
	if err != nil {
		t.Fatal(err)
	}
	registered := make(map[string]bool)
	for _, a := range all.Analyzers() {
		registered[a.Name()] = true
	}
	for _, e := range entries {
		if !e.IsDir() || nonAnalyzerDirs[e.Name()] {
			continue
		}
		if !registered[e.Name()] {
			t.Errorf("analyzer package internal/lint/%s is not registered in all.Analyzers()", e.Name())
		}
	}
	if len(registered) != len(all.Analyzers()) {
		t.Error("duplicate analyzer names in all.Analyzers()")
	}
}

// TestFeedlintUsesRegistry pins cmd/feedlint to the registry: the
// command must build its analyzer list from all.Analyzers(), not a
// private copy that can drift.
func TestFeedlintUsesRegistry(t *testing.T) {
	src, err := os.ReadFile("../../../cmd/feedlint/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "all.Analyzers()") {
		t.Error("cmd/feedlint/main.go does not call all.Analyzers(); the command and the registry can drift")
	}
}
