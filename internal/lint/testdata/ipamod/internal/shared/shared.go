// Package shared holds the types the ipa engine tests resolve against:
// a struct-field lock, an embedded (promoted) lock, and an interface
// dispatched across packages.
package shared

import "sync"

// Res guards N with a plain struct-field mutex.
type Res struct {
	Mu sync.Mutex
	N  int
}

// Embedded promotes Lock/Unlock from an embedded sync.Mutex.
type Embedded struct {
	sync.Mutex
	V int
}

// Waiter is implemented in package b; package a dispatches through it.
type Waiter interface {
	Await()
}
