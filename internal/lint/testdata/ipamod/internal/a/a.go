// Package a exercises summary construction: call chains to blocking
// operations, goroutine-excluded calls, lock acquisition propagation,
// promoted locks, transitive channel closes, and WaitGroup waits.
package a

import (
	"sync"

	"ipamod/internal/shared"
)

// Top reaches a channel send two calls deep.
func Top(ch chan int) { mid(ch) }

func mid(ch chan int) { leafSend(ch) }

func leafSend(ch chan int) { ch <- 1 }

// Spawner runs leafSend on its own goroutine: Spawner itself must not be
// summarized as blocking.
func Spawner(ch chan int) { go leafSend(ch) }

// LockRes acquires the struct-field lock directly.
func LockRes(r *shared.Res) {
	r.Mu.Lock()
	r.N++
	r.Mu.Unlock()
}

// Caller acquires shared.Res.Mu only transitively.
func Caller(r *shared.Res) { LockRes(r) }

// LockEmbedded acquires a promoted (embedded) mutex.
func LockEmbedded(e *shared.Embedded) {
	e.Lock()
	e.V++
	e.Unlock()
}

// CloseIt closes its parameter; CloseVia does so transitively.
func CloseIt(ch chan int) { close(ch) }

func CloseVia(ch chan int) { CloseIt(ch) }

// WaitAll blocks on a WaitGroup.
func WaitAll(wg *sync.WaitGroup) { wg.Wait() }

// Detached builds a blocking closure without invoking it: the literal's
// body must not leak into Detached's own summary.
func Detached(ch chan int) func() {
	return func() { ch <- 9 }
}
