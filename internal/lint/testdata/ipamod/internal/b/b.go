// Package b implements shared.Waiter; Dispatch resolves to (*W).Await
// through method-set resolution, across packages.
package b

import "ipamod/internal/shared"

// W waits on its channel.
type W struct{ C chan struct{} }

// Await blocks receiving from w.C.
func (w *W) Await() { <-w.C }

// Dispatch calls through the interface.
func Dispatch(x shared.Waiter) { x.Await() }
