module ipamod

go 1.22
