module simclockmod

go 1.22
