package hyracks

import (
	"math/rand"
	"time"
)

// Stamp reads time through the package hook, so experiments can pin it.
func Stamp() time.Time {
	return nowFunc()
}

// Seeded draws from an explicitly seeded generator: deterministic per
// seed, so constructing and using it is allowed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Sanctioned demonstrates the allow directive for a genuine exception.
func Sanctioned() time.Time {
	return time.Now() //feedlint:allow simclock -- wall-clock logging only
}
