// Package hyracks holds simclock fixtures: the simulated cluster must
// read time and randomness through swappable hooks.
package hyracks

import (
	"math/rand"
	"time"
)

// nowFunc is the sanctioned indirection point: assigning the function
// value is allowed, scattered call sites are not.
var nowFunc = time.Now

// Beat stamps a heartbeat off the real clock directly.
func Beat() time.Time {
	return time.Now()
}

// Age measures against the real clock through time.Since.
func Age(t time.Time) time.Duration {
	return time.Since(t)
}

// Jitter draws from the process-global generator, so two runs of the same
// experiment diverge.
func Jitter() int {
	return rand.Intn(10)
}
