package pkg

// Good guards the call directly; the comparison doubles as the nil
// evidence that makes Hook optional.
func Good(o *Options) {
	if o.Hook != nil {
		o.Hook("event")
	}
}

// GoodEarlyReturn proves the hook non-nil for the rest of the body.
func GoodEarlyReturn(o *Options) {
	if o.Hook == nil {
		return
	}
	o.Hook("event")
}

// fire is the declared nil-safe wrapper: it owns the nil contract.
//
//feedlint:nilsafe
func fire(f func(string)) {
	if f != nil {
		f("event")
	}
}

// GoodWrapped routes the hook through the declared wrapper.
func GoodWrapped(o *Options) {
	fire(o.Hook)
}

// CallMust calls the mandatory callback: no nil evidence exists for
// Must.CB, so it is not an optional hook and needs no guard.
func CallMust(m *Must) {
	m.CB()
}
