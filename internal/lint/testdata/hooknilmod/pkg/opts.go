// Package pkg is the hooknil fixture: Options carries optional hook
// fields (the module nil-checks them, so they are evidently optional),
// while Must.CB is mandatory — nothing ever nil-checks it.
package pkg

// Options carries the optional hooks.
type Options struct {
	// Hook observes events; nil means no observer.
	Hook func(string)
	// Observer counts frames; nil means no counter.
	Observer func(int)
}

// Must carries a mandatory callback: no nil evidence anywhere.
type Must struct {
	CB func()
}

// Configured reports whether an observer is installed; this comparison
// is the nil evidence that makes Observer optional.
func Configured(o *Options) bool {
	return o.Observer != nil
}
