package pkg

// Bad calls the optional hook with no guard at all.
func Bad(o *Options) {
	o.Hook("event")
}

// BadCopy hides the hook behind a local copy before the unguarded call.
func BadCopy(o *Options) {
	h := o.Hook
	h("event")
}

// BadPass hands the unchecked hook to a helper; the dereference is one
// call away.
func BadPass(o *Options) {
	invoke(o.Hook)
}

// BadDeep routes it through two helpers.
func BadDeep(o *Options) {
	relay(o.Hook)
}

func relay(f func(string)) {
	invoke(f)
}

func invoke(f func(string)) {
	f("event")
}

// BadObserver uses the other optional field unguarded.
func BadObserver(o *Options) {
	o.Observer(1)
}
