module hooknilmod

go 1.22
