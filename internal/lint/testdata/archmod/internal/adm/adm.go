// Package adm is the fixture's bottom layer: it imports nothing internal.
package adm

// V is a placeholder value used by upper layers.
func V() int { return 1 }
