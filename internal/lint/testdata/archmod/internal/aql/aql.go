// Package aql sits above the data model but reaches into a cmd/ binary,
// breaking the global "nothing imports cmd/" rule.
package aql

import (
	_ "archmod/cmd/tool"

	"archmod/internal/adm"
)

// Q evaluates a fixture query.
func Q() int { return adm.V() }
