// Package lsm may import only adm; reaching up into storage is a
// violation.
package lsm

import (
	_ "archmod/internal/storage"

	"archmod/internal/adm"
)

// Open opens a fixture tree.
func Open() int { return adm.V() }

// Compact is outside the fault-hook surface chaos is allowed to touch.
func Compact() {}
