// Package hyracks is the fixture dataflow engine; it must be
// self-contained, so importing the feed runtime is a violation.
package hyracks

import _ "archmod/internal/core"

// Schedule plans a fixture job.
func Schedule() {}
