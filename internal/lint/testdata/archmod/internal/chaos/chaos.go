// Package chaos may import lsm, but only through the declared fault-hook
// surface: Open is on the list, Compact is not.
package chaos

import "archmod/internal/lsm"

// Stress opens a tree (allowed) and then reaches past the surface.
func Stress() int {
	lsm.Compact()
	return lsm.Open()
}
