// Package storage legally imports adm; it sits above lsm in the real
// layering, and here stays clean.
package storage

import "archmod/internal/adm"

// Size reports a fixture size.
func Size() int { return adm.V() }
