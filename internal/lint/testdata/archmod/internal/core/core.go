// Package core is the fixture feed runtime; importing the query layer
// (aql) inverts the architecture.
package core

import (
	_ "archmod/internal/aql"

	"archmod/internal/adm"
)

// Run drives a fixture pipeline.
func Run() int { return adm.V() }
