module archmod

go 1.22
