// Command tool exists so the fixture can demonstrate the "nothing imports
// cmd/" rule.
package main

func main() {}
