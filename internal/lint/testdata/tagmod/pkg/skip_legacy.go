// +build feedlintneverset

package pkg

const Value = "legacy-tagged"
