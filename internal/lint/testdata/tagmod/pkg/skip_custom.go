//go:build feedlintneverset

package pkg

const Value = "custom-tagged"
