//go:build ignore

package pkg

const Value = "ignored"
