// Package pkg exercises the loader's build-constraint handling: the
// sibling files are excluded by unsatisfiable tags and each re-declares
// Value, so the package only type-checks if the loader really skips them
// (and reports the skips).
package pkg

// Value is re-declared by every excluded sibling file.
const Value = "portable"
