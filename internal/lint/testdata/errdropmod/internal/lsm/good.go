package lsm

import (
	"hash/crc32"
	"os"
)

// Checksum writes into a hash, which contractually cannot fail.
func Checksum(data []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write(data)
	return h.Sum32()
}

// CloseQuietly discards explicitly, which is visible and deliberate.
func CloseQuietly(f *os.File) {
	_ = f.Close()
}

// ReadHeader checks the errors that matter and defers Close on a
// read-only handle, which is exempt.
func ReadHeader(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 8)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteChecked handles every durability error.
func WriteChecked(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
