// Package lsm holds errdrop fixtures: durability-path errors silently
// discarded.
package lsm

import (
	"bufio"
	"os"
)

// WriteAll drops the error of every durability call it makes.
func WriteAll(f *os.File, data []byte) {
	f.Write(data)
	f.Sync()
	f.Close()
}

// FlushDrop loses whatever the buffered writer had not yet written.
func FlushDrop(w *bufio.Writer) {
	w.Flush()
}
