module errdropmod

go 1.22
