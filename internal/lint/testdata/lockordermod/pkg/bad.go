// Package pkg is the lockorder known-bad fixture: an A→B/B→A
// acquisition cycle established through a helper call, a transitive
// block under a held lock, a direct file Sync under lock, and the
// defer-LIFO hazard where a deferred Sync runs before the deferred
// Unlock.
package pkg

import (
	"os"
	"sync"

	"lockordermod/internal/shared"
)

// lockCommit acquires the commit lock; callers holding the ingest lock
// establish the Ingest→Commit edge through this helper.
func lockCommit(c *shared.Commit) {
	c.Mu.Lock()
	c.N++
	c.Mu.Unlock()
}

// IngestThenCommit holds Ingest.Mu while lockCommit takes Commit.Mu.
func IngestThenCommit(i *shared.Ingest, c *shared.Commit) {
	i.Mu.Lock()
	defer i.Mu.Unlock()
	lockCommit(c)
}

// CommitThenIngest takes the same two locks in the opposite order,
// closing the cycle.
func CommitThenIngest(i *shared.Ingest, c *shared.Commit) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	i.Mu.Lock()
	i.N++
	i.Mu.Unlock()
}

// waitAll blocks on the group; WaitUnderLock reaches it with a lock held.
func waitAll(wg *sync.WaitGroup) {
	wg.Wait()
}

// WaitUnderLock holds Ingest.Mu into a transitive WaitGroup.Wait.
func WaitUnderLock(i *shared.Ingest, wg *sync.WaitGroup) {
	i.Mu.Lock()
	defer i.Mu.Unlock()
	waitAll(wg)
}

// SyncUnderLock calls a blocking file Sync directly under the lock.
func SyncUnderLock(i *shared.Ingest, f *os.File) error {
	i.Mu.Lock()
	defer i.Mu.Unlock()
	return f.Sync()
}

// DeferHazard registers the Sync after the Unlock: LIFO order runs the
// Sync first, while the lock is still held.
func DeferHazard(i *shared.Ingest, f *os.File) {
	i.Mu.Lock()
	defer i.Mu.Unlock()
	defer f.Sync()
	i.N++
}
