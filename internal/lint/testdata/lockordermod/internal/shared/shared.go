// Package shared holds the lock-bearing types the fixture's functions
// acquire in conflicting orders.
package shared

import "sync"

// Ingest guards the ingest side.
type Ingest struct {
	Mu sync.Mutex
	N  int
}

// Commit guards the commit side.
type Commit struct {
	Mu sync.Mutex
	N  int
}
