module lockordermod

go 1.22
