module chanmod

go 1.22
