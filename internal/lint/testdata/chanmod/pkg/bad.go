// Package pkg is the chanhygiene known-bad fixture: closes of channels
// the function does not own (directly and through closing helpers),
// sends racing a possible close, and for/select loops with no way out.
package pkg

// Worker owns its channels; outsiders must not close them.
type Worker struct {
	Stop chan struct{}
	Out  chan int
}

// KillForeign closes a channel owned by a caller-supplied Worker.
func KillForeign(w *Worker) {
	close(w.Stop)
}

// drainAndClose is a closing helper: the close obligation moves to its
// call sites.
func drainAndClose(ch chan int) {
	for range ch {
	}
	close(ch)
}

// closeVia pushes the obligation one call deeper.
func closeVia(ch chan int) {
	drainAndClose(ch)
}

// BadDelegate hands a foreign channel to the closing helper.
func BadDelegate(w *Worker) {
	drainAndClose(w.Out)
}

// BadDelegateDeep does the same through two levels.
func BadDelegateDeep(w *Worker) {
	closeVia(w.Out)
}

// SendAfterClose sends on a channel it just closed.
func SendAfterClose() {
	ch := make(chan int)
	close(ch)
	ch <- 1
}

// SendAfterHelperClose reaches the close through the helper first.
func SendAfterHelperClose() {
	ch := make(chan int, 1)
	drainAndClose(ch)
	ch <- 2
}

// Leak spins a for/select worker with no exit at all.
func Leak(in chan int) {
	go func() {
		for {
			select {
			case v := <-in:
				_ = v
			}
		}
	}()
}

// FakeStop thinks break leaves the loop; it only leaves the select.
func FakeStop(stop chan struct{}, in chan int) {
	for {
		select {
		case <-stop:
			break
		case v := <-in:
			_ = v
		}
	}
}
