package pkg

// NewWorker builds a worker that owns its channels.
func NewWorker() *Worker {
	return &Worker{Stop: make(chan struct{}), Out: make(chan int)}
}

// Close shuts down through the owner: receiver fields are the method's
// to close.
func (w *Worker) Close() {
	close(w.Stop)
}

// OwnerDelegate made the channel, so it may hand it to a closing helper.
func OwnerDelegate() {
	ch := make(chan int)
	drainAndClose(ch)
}

// Run is the well-formed worker loop: the stop case returns.
func (w *Worker) Run() {
	for {
		select {
		case <-w.Stop:
			return
		case v := <-w.Out:
			_ = v
		}
	}
}

// LabeledStop exits with a labeled break.
func LabeledStop(stop chan struct{}, in chan int) {
loop:
	for {
		select {
		case <-stop:
			break loop
		case v := <-in:
			_ = v
		}
	}
}

// SendThenClose is the legal order: all sends happen before the close.
func SendThenClose() {
	ch := make(chan int, 2)
	ch <- 1
	ch <- 2
	close(ch)
}
