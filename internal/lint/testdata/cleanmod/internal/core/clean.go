// Package core is the clean fixture: it exercises the territory of every
// analyzer — goroutines, locks, durability calls, clocks — without
// violating any rule, so the suite must report nothing.
package core

import (
	"context"
	"math/rand"
	"os"
	"sync"
	"time"
)

// nowFunc is the package clock hook.
var nowFunc = time.Now

// Pump moves values until its context is cancelled.
type Pump struct {
	mu   sync.Mutex
	sent int
}

// Run forwards ticks to out and stops with ctx.
func (p *Pump) Run(ctx context.Context, out chan time.Time) {
	go func() {
		for {
			select {
			case out <- nowFunc():
				p.mu.Lock()
				p.sent++
				p.mu.Unlock()
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Sent reads the counter under the lock through a pointer receiver.
func (p *Pump) Sent() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// Persist writes a record and checks every durability error.
func Persist(path string, data []byte, seed int64) error {
	rnd := rand.New(rand.NewSource(seed))
	_ = rnd.Intn(10)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
