// Package lsm is the clean fixture's durability layer: every
// Write/Flush/Close/Sync error is handled or explicitly discarded.
package lsm

import (
	"bufio"
	"os"
)

// Append writes a record through a buffered writer, checking every
// durability call.
func Append(path string, rec []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(rec); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
