package pkg

// GetPtr reads through a pointer receiver: no copy.
func (g *Guarded) GetPtr() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// SendAfterUnlock snapshots under the lock and sends outside it.
func SendAfterUnlock(g *Guarded, ch chan int) {
	g.mu.Lock()
	v := g.n
	g.mu.Unlock()
	ch <- v
}

// NonBlockingSend may send while locked, but the default clause keeps the
// select from blocking indefinitely.
func NonBlockingSend(g *Guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case ch <- g.n:
	default:
	}
}

// NewGuarded constructs a fresh value: composite literals are not copies.
func NewGuarded() *Guarded {
	g := Guarded{n: 1}
	return &g
}
