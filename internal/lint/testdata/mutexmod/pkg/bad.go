// Package pkg holds deliberate lock-discipline violations for the
// mutexcheck fixture.
package pkg

import "sync"

// Guarded couples a mutex with the state it protects.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue receives a mutex by value: locking the copy protects nothing.
func ByValue(mu sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

// Get has a value receiver, so every call copies the embedded mutex.
func (g Guarded) Get() int { return g.n }

// Snapshot copies a lock-carrying struct through a pointer dereference.
func Snapshot(g *Guarded) int {
	snap := *g
	return snap.n
}

// SendUnderLock performs a blocking send between Lock and Unlock.
func SendUnderLock(g *Guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n
	g.mu.Unlock()
	ch <- 0
}

// SendUnderDeferredLock holds the lock to function exit via defer, so the
// send still happens under it.
func SendUnderDeferredLock(g *Guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.n
}

// SelectSendUnderLock blocks in a defaultless select while locked.
func SelectSendUnderLock(g *Guarded, ch chan int, stop chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case ch <- g.n:
	case <-stop:
	}
}
