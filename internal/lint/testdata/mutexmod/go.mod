module mutexmod

go 1.22
