// Package core holds goroutine-hygiene fixtures: goroutines in the
// ingestion pipeline must carry a shutdown path.
package core

// Leak launches a goroutine with no context, done channel, or WaitGroup:
// it spins forever after the feed disconnects.
func Leak(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}

// FireAndForget is a second leak suspect: a one-shot send with nothing
// bounding its lifetime.
func FireAndForget(ch chan int, v int) {
	go func() {
		ch <- v
	}()
}
