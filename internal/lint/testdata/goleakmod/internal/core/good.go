package core

import (
	"context"
	"sync"
)

// WithContext shuts down when the feed job's context is cancelled.
func WithContext(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case ch <- 1:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// WithDone shuts down when the done channel closes.
func WithDone(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case ch <- 1:
			case <-done:
				return
			}
		}
	}()
}

// WithWaitGroup is tracked by its caller's WaitGroup.
func WithWaitGroup(wg *sync.WaitGroup, ch chan int, v int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- v
	}()
}

// WithReceive drains a work channel; the producer closing it ends the
// goroutine.
func WithReceive(work chan int, out chan int) {
	go func() {
		for v := range work {
			out <- v
		}
	}()
}
