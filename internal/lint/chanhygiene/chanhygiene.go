// Package chanhygiene enforces channel ownership and lifecycle rules
// interprocedurally:
//
//  1. close of a non-owned channel — a function may close channels it
//     made, channels hanging off its receiver, and its own package's
//     globals; closing through a caller-supplied struct reaches into
//     another component's lifecycle. The check is interprocedural: a
//     helper that closes its channel parameter (directly or through more
//     calls, via the ipa ClosesParams summary) transfers the obligation
//     to its call sites, so passing somebody else's channel into a
//     closing helper is flagged at the call.
//  2. send on a maybe-closed channel — a send that follows, on the same
//     path, a close of the same channel (again including closes hidden
//     inside callees) panics at runtime.
//  3. for { select } loops with no way out — a condition-less for whose
//     body is select-driven and contains no return, no labeled break, no
//     goto out, and no panic/exit can never terminate; its goroutine
//     leaks. An unlabeled break inside a select case exits the select,
//     not the loop, and gets its own message because it usually means
//     the author thought otherwise.
package chanhygiene

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"asterixfeeds/internal/lint"
	"asterixfeeds/internal/lint/ipa"
)

// Analyzer implements lint.ModuleAnalyzer.
type Analyzer struct{}

// New returns the chanhygiene analyzer.
func New() *Analyzer { return &Analyzer{} }

// Name implements lint.Analyzer.
func (*Analyzer) Name() string { return "chanhygiene" }

// Doc implements lint.Analyzer.
func (*Analyzer) Doc() string {
	return "channel ownership on close, sends after possible close, and inescapable for/select loops"
}

// RunModule implements lint.ModuleAnalyzer.
func (*Analyzer) RunModule(pkgs []*lint.Package) []lint.Finding {
	prog := ipa.For(pkgs)
	c := &checker{prog: prog}
	for _, fn := range prog.SortedFuncs() {
		c.checkFunc(fn)
	}
	sortFindings(c.findings)
	return c.findings
}

type checker struct {
	prog     *ipa.Program
	findings []lint.Finding
}

func (c *checker) report(fn *ipa.Func, pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, lint.Finding{
		Pos:     fn.Pkg.Fset.Position(pos),
		Rule:    "chanhygiene",
		Message: fmt.Sprintf(format, args...),
	})
}

func sortFindings(fs []lint.Finding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0; j-- {
			a, b := fs[j-1], fs[j]
			if a.Pos.Filename < b.Pos.Filename || (a.Pos.Filename == b.Pos.Filename && a.Pos.Line <= b.Pos.Line) {
				break
			}
			fs[j-1], fs[j] = b, a
		}
	}
}

// ownership classifies how fn reached a channel expression.
type ownership int

const (
	ownedHere    ownership = iota // made locally, receiver field, own global
	ownParamChan                  // the bare channel parameter: obligation moves to callers
	ownForeign                    // caller-supplied struct's field, foreign global, …
)

// fnScope is the per-function (or per-literal) analysis scope.
type fnScope struct {
	fn *ipa.Func
	// madeLocals are local variables assigned from make(chan …) or from a
	// composite literal / constructor — things this scope created.
	madeLocals map[types.Object]bool
	// recv is the method receiver object, if any.
	recv types.Object
	// params maps channel-typed parameter objects to their index.
	params map[types.Object]int
}

func (c *checker) checkFunc(fn *ipa.Func) {
	sc := c.newScope(fn, fn.Decl.Body, fn.Decl.Type, fn.Decl.Recv)
	c.walkBody(sc, fn.Decl.Body.List, map[string]token.Position{})
	c.checkLoops(fn)
}

// newScope builds the scope for a function declaration or literal body.
func (c *checker) newScope(fn *ipa.Func, body *ast.BlockStmt, ftype *ast.FuncType, recv *ast.FieldList) *fnScope {
	sc := &fnScope{fn: fn, madeLocals: map[types.Object]bool{}, params: map[types.Object]int{}}
	if recv != nil && len(recv.List) == 1 && len(recv.List[0].Names) == 1 {
		sc.recv = fn.Pkg.Info.Defs[recv.List[0].Names[0]]
	}
	idx := 0
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for _, name := range field.Names {
				obj := fn.Pkg.Info.Defs[name]
				if obj != nil {
					if _, ok := obj.Type().Underlying().(*types.Chan); ok {
						sc.params[obj] = idx
					}
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	// Locals created in this scope: flow-insensitive, which only widens
	// ownership (fewer findings), never fabricates one.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := fn.Pkg.Info.Defs[id]
			if obj == nil {
				obj = fn.Pkg.Info.Uses[id]
			}
			if obj == nil || i >= len(as.Rhs) && len(as.Rhs) != 1 {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if createsValue(rhs) {
				sc.madeLocals[obj] = true
			}
		}
		return true
	})
	return sc
}

// createsValue reports whether the expression constructs a fresh value:
// make(...), composite literals, &composite, or any call (constructors
// return values the caller now owns).
func createsValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return true
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND && createsValue(e.X)
	}
	return false
}

// classify determines the ownership of channel expression e in scope sc.
func (c *checker) classify(sc *fnScope, e ast.Expr) (ownership, string) {
	e = ast.Unparen(e)
	root := e
	for {
		if sel, ok := root.(*ast.SelectorExpr); ok {
			root = ast.Unparen(sel.X)
			continue
		}
		if idx, ok := root.(*ast.IndexExpr); ok {
			root = ast.Unparen(idx.X)
			continue
		}
		break
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return ownedHere, "" // unknown shapes: stay quiet
	}
	obj := sc.fn.Pkg.Info.Uses[id]
	if obj == nil {
		obj = sc.fn.Pkg.Info.Defs[id]
	}
	if obj == nil {
		return ownedHere, ""
	}
	// Package-qualified global: pkg.Var.
	if _, isPkg := obj.(*types.PkgName); isPkg {
		return ownForeign, "package " + id.Name
	}
	if obj == sc.recv {
		return ownedHere, ""
	}
	if sc.madeLocals[obj] {
		return ownedHere, ""
	}
	if _, isParam := sc.params[obj]; isParam && root == e {
		return ownParamChan, ""
	}
	if v, ok := obj.(*types.Var); ok {
		if v.Parent() == sc.fn.Pkg.Pkg.Scope() {
			return ownedHere, "" // own package's global
		}
		if root != e {
			// Field or element of something we did not create.
			owner := ownerDesc(sc, v)
			if isParamObj(sc, obj) {
				return ownForeign, owner
			}
			// Field of some other local (e.g. loop variable over a foreign
			// slice): too murky to call foreign, stay quiet.
			return ownedHere, ""
		}
		// Bare local that was never assigned a fresh value: it aliases
		// something (often received as an argument-by-closure); stay quiet.
		return ownedHere, ""
	}
	return ownedHere, ""
}

func isParamObj(sc *fnScope, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	sig, ok := sc.fn.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	// Also the receiver-less case: parameters of the literal scope.
	_, isChanParam := sc.params[obj]
	return isChanParam
}

// ownerDesc names the owner of a foreign channel for messages: the
// named type of the caller-supplied value it hangs off.
func ownerDesc(sc *fnScope, v *types.Var) string {
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return "caller-supplied " + n.Obj().Name()
	}
	return "a caller-supplied value"
}

// walkBody walks statements in execution order. closed maps the
// canonical text of channel expressions to the position where they were
// (possibly) closed on this path.
func (c *checker) walkBody(sc *fnScope, stmts []ast.Stmt, closed map[string]token.Position) {
	for _, s := range stmts {
		c.walkStmt(sc, s, closed)
	}
}

func cloneClosed(m map[string]token.Position) map[string]token.Position {
	out := make(map[string]token.Position, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (c *checker) walkStmt(sc *fnScope, s ast.Stmt, closed map[string]token.Position) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.walkExpr(sc, s.X, closed)
	case *ast.SendStmt:
		c.walkExpr(sc, s.Value, closed)
		key := types.ExprString(ast.Unparen(s.Chan))
		if pos, ok := closed[key]; ok {
			c.report(sc.fn, s.Arrow, "send on %s, which may already be closed (closed at line %d); send on a closed channel panics", key, pos.Line)
		}
		c.walkExpr(sc, s.Chan, closed)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.walkExpr(sc, e, closed)
		}
		for _, lhs := range s.Lhs {
			// Reassignment makes the old closed fact stale.
			delete(closed, types.ExprString(ast.Unparen(lhs)))
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.walkExpr(sc, e, closed)
		}
	case *ast.IncDecStmt:
		c.walkExpr(sc, s.X, closed)
	case *ast.GoStmt:
		c.walkExpr(sc, s.Call, cloneClosed(closed))
	case *ast.DeferStmt:
		c.walkExpr(sc, s.Call, cloneClosed(closed))
	case *ast.BlockStmt:
		c.walkBody(sc, s.List, closed)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(sc, s.Init, closed)
		}
		c.walkExpr(sc, s.Cond, closed)
		c.walkBody(sc, s.Body.List, cloneClosed(closed))
		if s.Else != nil {
			c.walkStmt(sc, s.Else, cloneClosed(closed))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(sc, s.Init, closed)
		}
		if s.Cond != nil {
			c.walkExpr(sc, s.Cond, closed)
		}
		if s.Post != nil {
			c.walkStmt(sc, s.Post, closed)
		}
		c.walkBody(sc, s.Body.List, closed) // loop: closes persist into next iteration
	case *ast.RangeStmt:
		c.walkExpr(sc, s.X, closed)
		c.walkBody(sc, s.Body.List, closed)
	case *ast.LabeledStmt:
		c.walkStmt(sc, s.Stmt, closed)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(sc, s.Init, closed)
		}
		if s.Tag != nil {
			c.walkExpr(sc, s.Tag, closed)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkBody(sc, cc.Body, cloneClosed(closed))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkBody(sc, cc.Body, cloneClosed(closed))
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				inner := cloneClosed(closed)
				if cc.Comm != nil {
					c.walkStmt(sc, cc.Comm, inner)
				}
				c.walkBody(sc, cc.Body, inner)
			}
		}
	}
}

// walkExpr visits calls and function literals in an expression.
func (c *checker) walkExpr(sc *fnScope, e ast.Expr, closed map[string]token.Position) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal is its own ownership scope: channels it did not
			// make are borrowed from the environment, but locals it makes
			// are its to close. Closed-state starts fresh (the literal may
			// run at any time).
			lit := c.newScope(sc.fn, n.Body, n.Type, nil)
			lit.recv = sc.recv // method literals still belong to the receiver
			for obj := range sc.madeLocals {
				lit.madeLocals[obj] = true // closures over locally-made channels stay owned
			}
			c.walkBody(lit, n.Body.List, map[string]token.Position{})
			return false
		case *ast.CallExpr:
			c.checkCall(sc, n, closed)
			for _, arg := range n.Args {
				c.walkExpr(sc, arg, closed)
			}
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				inner := c.newScope(sc.fn, lit.Body, lit.Type, nil)
				inner.recv = sc.recv
				for obj := range sc.madeLocals {
					inner.madeLocals[obj] = true
				}
				c.walkBody(inner, lit.Body.List, closed)
			}
			return false
		}
		return true
	})
}

// checkCall handles close(e) and calls into channel-closing helpers.
func (c *checker) checkCall(sc *fnScope, call *ast.CallExpr, closed map[string]token.Position) {
	pos := sc.fn.Pkg.Fset.Position(call.Pos())

	// Builtin close.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := sc.fn.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) == 1 {
			arg := ast.Unparen(call.Args[0])
			own, owner := c.classify(sc, arg)
			if own == ownForeign {
				c.report(sc.fn, call.Pos(), "close of %s reaches into %s's lifecycle; only the channel's creator should close it",
					types.ExprString(arg), owner)
			}
			closed[types.ExprString(arg)] = pos
			return
		}
	}

	// Call into a helper that closes one of its channel parameters.
	for _, target := range c.prog.TargetsOf(call) {
		for idx, site := range target.Summary.ClosesParams {
			if idx >= len(call.Args) {
				continue
			}
			arg := ast.Unparen(call.Args[idx])
			own, owner := c.classify(sc, arg)
			key := types.ExprString(arg)
			if own == ownForeign {
				c.report(sc.fn, call.Pos(), "passes %s, owned by %s, to %s which closes it%s; only the channel's creator should close it",
					key, owner, target.Display(), site.Via())
			}
			closed[key] = pos
		}
	}
}

// checkLoops flags for{select} loops that cannot terminate.
func (c *checker) checkLoops(fn *ipa.Func) {
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
			return true
		}
		hasSelect := false
		for _, s := range loop.Body.List {
			inner := s
			if ls, ok := inner.(*ast.LabeledStmt); ok {
				inner = ls.Stmt
			}
			if _, ok := inner.(*ast.SelectStmt); ok {
				hasSelect = true
				break
			}
		}
		if !hasSelect {
			return true
		}
		exits, selectBreaks := loopExits(loop)
		if exits {
			return true
		}
		if selectBreaks > 0 {
			c.report(fn, loop.For, "for/select loop can never exit: its break statements leave the select, not the loop; use a labeled break or return")
		} else {
			c.report(fn, loop.For, "for/select loop has no exit (no return, labeled break, or goto); the goroutine running it can never stop")
		}
		return true
	})
}

// loopExits reports whether the condition-less loop body contains a
// statement that leaves the loop, and counts unlabeled breaks that bind
// to an inner select/switch instead.
func loopExits(loop *ast.ForStmt) (exits bool, selectBreaks int) {
	// breakable tracks the nearest enclosing construct an unlabeled break
	// would bind to: the loop itself, or an inner select/switch/for.
	var scan func(n ast.Node, breakableIsLoop bool)
	scan = func(n ast.Node, breakableIsLoop bool) {
		if n == nil || exits {
			return
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			switch n.Tok {
			case token.GOTO:
				exits = true // assume it leaves; false negatives beat noise
			case token.BREAK:
				if n.Label != nil {
					exits = true // labels on a condition-less select loop leave it
				} else if breakableIsLoop {
					exits = true
				} else {
					selectBreaks++
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					if fun.Name == "panic" {
						exits = true
					}
				case *ast.SelectorExpr:
					switch fun.Sel.Name {
					case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
						exits = true
					}
				}
			}
		case *ast.ForStmt:
			for _, s := range n.Body.List {
				scan(s, false)
			}
			return
		case *ast.RangeStmt:
			for _, s := range n.Body.List {
				scan(s, false)
			}
			return
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						scan(s, false)
					}
				}
			}
			return
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			var body *ast.BlockStmt
			if sw, ok := n.(*ast.SwitchStmt); ok {
				body = sw.Body
			} else {
				body = n.(*ast.TypeSwitchStmt).Body
			}
			for _, cl := range body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					for _, s := range cc.Body {
						scan(s, false)
					}
				}
			}
			return
		case *ast.IfStmt:
			scan(n.Body, breakableIsLoop)
			if n.Else != nil {
				scan(n.Else, breakableIsLoop)
			}
			return
		case *ast.BlockStmt:
			for _, s := range n.List {
				scan(s, breakableIsLoop)
			}
			return
		case *ast.LabeledStmt:
			scan(n.Stmt, breakableIsLoop)
			return
		case *ast.GoStmt:
			return // another goroutine's statements do not exit this loop
		}
	}
	for _, s := range loop.Body.List {
		scan(s, true)
	}
	return exits, selectBreaks
}
