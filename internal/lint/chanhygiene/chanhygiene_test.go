package chanhygiene_test

import (
	"testing"

	"asterixfeeds/internal/lint/chanhygiene"
	"asterixfeeds/internal/lint/linttest"
)

func TestChanhygieneFixture(t *testing.T) {
	linttest.RunGolden(t, "chanmod", chanhygiene.New())
}

func TestChanhygieneCleanFixture(t *testing.T) {
	pkgs, root := linttest.Fixture(t, "cleanmod")
	findings := chanhygiene.New().RunModule(pkgs)
	if out := linttest.Format(root, findings); out != "" {
		t.Errorf("chanhygiene reported findings on the clean fixture:\n%s", out)
	}
}
