package ipa_test

import (
	"testing"

	"asterixfeeds/internal/lint"
	"asterixfeeds/internal/lint/ipa"
	"asterixfeeds/internal/lint/linttest"
)

func buildProgram(t *testing.T) *ipa.Program {
	t.Helper()
	pkgs, _ := linttest.Fixture(t, "ipamod")
	return ipa.For(pkgs)
}

func fnByName(t *testing.T, p *ipa.Program, display string) *ipa.Func {
	t.Helper()
	for _, fn := range p.SortedFuncs() {
		if fn.Display() == display {
			return fn
		}
	}
	t.Fatalf("function %s not found in program", display)
	return nil
}

func TestBlockingPropagatesThroughCallChain(t *testing.T) {
	p := buildProgram(t)
	top := fnByName(t, p, "a.Top")
	site := top.Summary.Blocks[ipa.KindSend]
	if site == nil {
		t.Fatal("a.Top: channel send not propagated through mid → leafSend")
	}
	if got, want := site.Via(), " via a.mid → a.leafSend"; got != want {
		t.Errorf("a.Top send chain = %q, want %q", got, want)
	}
	if site.Pos.Line == 0 {
		t.Error("propagated site lost the operation position")
	}
}

func TestGoStatementDoesNotBlockTheSpawner(t *testing.T) {
	p := buildProgram(t)
	sp := fnByName(t, p, "a.Spawner")
	if sp.Summary.Blocks[ipa.KindSend] != nil {
		t.Error("a.Spawner: go leafSend(ch) must not make the spawner blocking")
	}
}

func TestDetachedLiteralExcludedFromSummary(t *testing.T) {
	p := buildProgram(t)
	d := fnByName(t, p, "a.Detached")
	if d.Summary.Blocks[ipa.KindSend] != nil {
		t.Error("a.Detached: constructing a closure must not summarize as a send")
	}
}

func TestLockAcquisitionPropagates(t *testing.T) {
	p := buildProgram(t)
	caller := fnByName(t, p, "a.Caller")
	want := ipa.LockKey{Owner: "ipamod/internal/shared.Res", Field: "Mu"}
	site := caller.Summary.Acquires[want]
	if site == nil {
		t.Fatalf("a.Caller: %s not in transitive acquires %v", want, caller.Summary.SortedAcquires())
	}
	if got := site.Via(); got != " via a.LockRes" {
		t.Errorf("acquisition chain = %q, want via a.LockRes", got)
	}
	if want.String() != "shared.Res.Mu" {
		t.Errorf("display form = %q, want shared.Res.Mu", want.String())
	}
}

func TestPromotedLockKeyedByEmbedder(t *testing.T) {
	p := buildProgram(t)
	fn := fnByName(t, p, "a.LockEmbedded")
	want := ipa.LockKey{Owner: "ipamod/internal/shared.Embedded", Field: "Mutex"}
	if fn.Summary.Acquires[want] == nil {
		t.Fatalf("a.LockEmbedded: promoted lock not keyed as %s; acquires: %v", want, fn.Summary.SortedAcquires())
	}
}

func TestCloseParamPropagates(t *testing.T) {
	p := buildProgram(t)
	via := fnByName(t, p, "a.CloseVia")
	if via.Summary.ClosesParams[0] == nil {
		t.Fatal("a.CloseVia: transitive close of parameter 0 not summarized")
	}
}

func TestWaitGroupWaitIsBlocking(t *testing.T) {
	p := buildProgram(t)
	fn := fnByName(t, p, "a.WaitAll")
	if fn.Summary.Blocks[ipa.KindWGWait] == nil {
		t.Fatal("a.WaitAll: WaitGroup.Wait not classified as blocking")
	}
}

func TestInterfaceDispatchResolvesToImplementers(t *testing.T) {
	p := buildProgram(t)
	disp := fnByName(t, p, "b.Dispatch")
	if disp.Summary.Blocks[ipa.KindRecv] == nil {
		t.Fatal("b.Dispatch: receive in (*W).Await not reached through interface dispatch")
	}
	if got := disp.Summary.Blocks[ipa.KindRecv].Via(); got != " via b.(*W).Await" {
		t.Errorf("dispatch chain = %q, want via b.(*W).Await", got)
	}
	// The call site itself resolves to the concrete method.
	var found bool
	for _, call := range disp.Calls {
		for _, target := range call.Targets {
			if target.Display() == "b.(*W).Await" {
				found = true
			}
		}
	}
	if !found {
		t.Error("b.Dispatch call site did not resolve to b.(*W).Await")
	}
}

func TestProgramCacheReturnsSameInstance(t *testing.T) {
	pkgs, _ := linttest.Fixture(t, "ipamod")
	if ipa.For(pkgs) != ipa.For(pkgs) {
		t.Error("ipa.For rebuilt the program for the same package set")
	}
}

func TestRealModuleBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := lint.NewLoader("../../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	p := ipa.Build(pkgs)
	if len(p.SortedFuncs()) < 100 {
		t.Errorf("suspiciously small program: %d functions", len(p.SortedFuncs()))
	}
}
