package ipa

import (
	"go/ast"
	"go/types"
	"strings"

	"asterixfeeds/internal/lint"
)

// LockKey identifies a lock abstractly, the way a lock-order graph needs:
// by the struct field (or package-level variable) that holds it, not by
// the runtime instance. Two acquisitions of different Tree instances'
// mu share the key lsm.Tree.mu — exactly the granularity at which a
// global acquisition order must exist.
type LockKey struct {
	// Owner is the qualified owner: the defining named type
	// ("asterixfeeds/internal/lsm.Tree") for struct fields, the package
	// path for package-level variables, or "local:<func>" for locks the
	// analysis cannot correlate across functions (locals, parameters).
	Owner string
	// Field is the field or variable name holding the lock.
	Field string
}

// Global reports whether the key names a lock correlatable across
// functions (a struct field or package-level variable).
func (k LockKey) Global() bool { return !strings.HasPrefix(k.Owner, "local:") && k.Owner != "" }

// String renders the short display form, e.g. "lsm.Tree.mu".
func (k LockKey) String() string {
	owner := k.Owner
	if i := strings.LastIndexByte(owner, '/'); i >= 0 {
		owner = owner[i+1:]
	}
	owner = strings.TrimPrefix(owner, "local:")
	if owner == "" {
		return k.Field
	}
	return owner + "." + k.Field
}

func (k LockKey) less(o LockKey) bool {
	if k.Owner != o.Owner {
		return k.Owner < o.Owner
	}
	return k.Field < o.Field
}

// LockOp describes one recognized x.Lock()/x.RLock()/x.Unlock()/
// x.RUnlock() call on a sync.Mutex or sync.RWMutex (possibly promoted
// through an embedded field).
type LockOp struct {
	// Key abstracts the lock; see LockKey.
	Key LockKey
	// Op is the method name: Lock, RLock, Unlock, RUnlock.
	Op string
	// Acquire is true for Lock and RLock.
	Acquire bool
	// Read is true for RLock and RUnlock.
	Read bool
	// Expr is the receiver's source text, for messages ("t.mu").
	Expr string
}

var lockMethods = map[string]bool{"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true}

// LockOpAt recognizes a lock operation at a call expression. It requires
// type information: without it no operation is reported (analyzers on a
// type-broken package degrade to doing nothing rather than guessing).
func LockOpAt(pkg *lint.Package, call *ast.CallExpr) (LockOp, bool) {
	if len(call.Args) != 0 {
		return LockOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !lockMethods[sel.Sel.Name] {
		return LockOp{}, false
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return LockOp{}, false
	}
	mobj := selection.Obj()
	if mobj.Pkg() == nil || mobj.Pkg().Path() != "sync" {
		return LockOp{}, false
	}
	op := LockOp{
		Op:      sel.Sel.Name,
		Acquire: sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock",
		Read:    sel.Sel.Name == "RLock" || sel.Sel.Name == "RUnlock",
		Expr:    types.ExprString(sel.X),
	}
	op.Key = lockKeyOf(pkg, sel, selection)
	return op, true
}

// lockKeyOf derives the abstract lock identity for a recognized lock
// method selection.
func lockKeyOf(pkg *lint.Package, sel *ast.SelectorExpr, selection *types.Selection) LockKey {
	// Promoted method (t.Lock() with an embedded sync.Mutex): the owner
	// is t's named type and the lock lives in the embedded field the
	// selection path enters first.
	if idx := selection.Index(); len(idx) > 1 {
		recv := derefNamed(selection.Recv())
		if recv != nil {
			if st, ok := recv.Underlying().(*types.Struct); ok && idx[0] < st.NumFields() {
				return LockKey{Owner: qualifiedName(recv), Field: st.Field(idx[0]).Name()}
			}
		}
	}
	return exprLockKey(pkg, sel.X)
}

// exprLockKey keys the receiver expression of a lock call: x.mu by its
// owning type and field, a package-level mu by its package, anything
// else (locals, parameters, map/slice elements of locals) as local.
func exprLockKey(pkg *lint.Package, e ast.Expr) LockKey {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if fieldSel, ok := pkg.Info.Selections[e]; ok && fieldSel.Kind() == types.FieldVal {
			if recv := derefNamed(fieldSel.Recv()); recv != nil {
				// Nested promoted fields: key by the outermost named
				// owner and the final field name.
				return LockKey{Owner: qualifiedName(recv), Field: fieldSel.Obj().Name()}
			}
		}
		// Package-qualified variable, pkg.mu.
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && objIsPkgLevel(obj) {
			return LockKey{Owner: obj.Pkg().Path(), Field: obj.Name()}
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e].(*types.Var); ok && obj.Pkg() != nil && objIsPkgLevel(obj) {
			return LockKey{Owner: obj.Pkg().Path(), Field: obj.Name()}
		}
	case *ast.IndexExpr:
		k := exprLockKey(pkg, e.X)
		if k.Global() {
			return LockKey{Owner: k.Owner, Field: k.Field + "[]"}
		}
	case *ast.StarExpr:
		return exprLockKey(pkg, e.X)
	}
	return LockKey{Owner: "local:" + pkg.Path, Field: types.ExprString(e)}
}

func objIsPkgLevel(obj *types.Var) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// derefNamed unwraps pointers and returns the named type, if any.
func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func qualifiedName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// CondVarKey abstracts the receiver of a sync.Cond method call (Wait,
// Signal, Broadcast) the same way locks are keyed, so the wait can be
// matched against Program.CondBinding.
func CondVarKey(pkg *lint.Package, call *ast.CallExpr) (LockKey, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return LockKey{}, false
	}
	return exprLockKey(pkg, sel.X), true
}

// BlockingCallAt recognizes the blocking method calls tracked beyond
// channel operations: sync.WaitGroup.Wait, sync.Cond.Wait, and
// (*os.File).Sync — the fsync that froze group commit when reached with
// the tree lock held.
func BlockingCallAt(pkg *lint.Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	mobj := selection.Obj()
	if mobj.Pkg() == nil {
		return "", false
	}
	// The selection receiver may be an embedder promoting the method, so
	// classify by the method's own declared receiver type instead.
	declRecv := ""
	if sig, ok := mobj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := derefNamed(sig.Recv().Type()); n != nil {
			declRecv = n.Obj().Name()
		}
	}
	switch {
	case mobj.Pkg().Path() == "sync" && sel.Sel.Name == "Wait":
		switch declRecv {
		case "WaitGroup":
			return KindWGWait, true
		case "Cond":
			return KindCondWait, true
		}
	case mobj.Pkg().Path() == "os" && sel.Sel.Name == "Sync" && declRecv == "File":
		return KindSync, true
	}
	return "", false
}
