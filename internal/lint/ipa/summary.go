package ipa

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Blocking-operation kinds recorded in summaries. Analyzers pick which
// kinds they report: lockorder, for instance, flags send/Wait/Sync/select
// under a held lock but leaves plain receives alone.
const (
	KindSend     = "channel send"
	KindRecv     = "channel receive"
	KindSelect   = "select with no default"
	KindWGWait   = "WaitGroup.Wait"
	KindCondWait = "Cond.Wait"
	KindSync     = "file Sync"
)

// Site is one concrete operation a summary fact points at, with the call
// chain that reaches it from the summarized function ("" chain for a
// direct fact). Pos is always the position of the operation itself.
type Site struct {
	// Pos locates the operation (the send, the Lock call, the close).
	Pos token.Position
	// Kind is the operation kind, one of the Kind* constants for
	// blocking facts.
	Kind string
	// Path lists the callee display names from the summarized function
	// down to the function containing the operation; empty for a fact in
	// the function itself.
	Path []string
	// CondKey, for KindCondWait sites, abstracts the condition variable
	// (e.g. {Mongo, commitCond}); consumers can look its bound lock up in
	// Program.CondBinding to exempt the mandatory wait-under-own-lock
	// pattern. Zero otherwise.
	CondKey LockKey
}

// Via renders the call chain for messages, e.g. " via lsm.(*Tree).Apply →
// lsm.(*wal).append"; empty for direct facts.
func (s *Site) Via() string {
	if len(s.Path) == 0 {
		return ""
	}
	return " via " + strings.Join(s.Path, " → ")
}

// Summary holds one function's interprocedural facts: what it may do on
// its own goroutine, directly or through any chain of synchronous calls.
type Summary struct {
	// Blocks maps blocking-operation kinds the function may reach to a
	// representative site. A function missing a kind cannot reach it.
	Blocks map[string]*Site
	// Acquires maps every lock the function may acquire (Lock or RLock,
	// released or not — acquisition order matters either way) to a
	// representative acquisition site. Function-local locks, which
	// cannot be correlated across calls, are excluded.
	Acquires map[LockKey]*Site
	// ClosesParams maps parameter indices of channel parameters the
	// function may close to the close site.
	ClosesParams map[int]*Site
}

func (s *Summary) addBlock(kind string, site *Site) bool {
	if s.Blocks == nil {
		s.Blocks = make(map[string]*Site)
	}
	if s.Blocks[kind] != nil {
		return false
	}
	s.Blocks[kind] = site
	return true
}

func (s *Summary) addAcquire(key LockKey, site *Site) bool {
	if s.Acquires == nil {
		s.Acquires = make(map[LockKey]*Site)
	}
	if s.Acquires[key] != nil {
		return false
	}
	s.Acquires[key] = site
	return true
}

func (s *Summary) addClosesParam(i int, site *Site) bool {
	if s.ClosesParams == nil {
		s.ClosesParams = make(map[int]*Site)
	}
	if s.ClosesParams[i] != nil {
		return false
	}
	s.ClosesParams[i] = site
	return true
}

// computeDirect records the facts fn establishes in its own body.
func (p *Program) computeDirect(fn *Func) {
	pkg := fn.Pkg
	pos := func(n ast.Node) token.Position { return pkg.Fset.Position(n.Pos()) }
	// Channel operations that are a select's communication clause are the
	// select's to classify: with a default case they are non-blocking
	// (`select { case ch <- v: default: }`), without one the SelectStmt
	// itself is recorded. Either way the bare op must not be.
	commOps := make(map[ast.Node]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.SendStmt, *ast.UnaryExpr:
					commOps[m] = true
				case *ast.CallExpr:
					return false // operand calls still count as their own ops
				}
				return true
			})
		}
		return true
	})
	WalkSync(fn.Decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !commOps[n] {
				fn.Summary.addBlock(KindSend, &Site{Pos: pkg.Fset.Position(n.Arrow), Kind: KindSend})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !commOps[n] {
				fn.Summary.addBlock(KindRecv, &Site{Pos: pos(n), Kind: KindRecv})
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					fn.Summary.addBlock(KindRecv, &Site{Pos: pos(n), Kind: KindRecv})
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				fn.Summary.addBlock(KindSelect, &Site{Pos: pos(n), Kind: KindSelect})
			}
		case *ast.CallExpr:
			if op, ok := LockOpAt(pkg, n); ok {
				if op.Acquire && op.Key.Global() {
					fn.Summary.addAcquire(op.Key, &Site{Pos: pos(n), Kind: op.Op})
				}
				return
			}
			if kind, ok := BlockingCallAt(pkg, n); ok {
				site := &Site{Pos: pos(n), Kind: kind}
				if kind == KindCondWait {
					if ck, ok := CondVarKey(pkg, n); ok {
						site.CondKey = ck
					}
				}
				fn.Summary.addBlock(kind, site)
				return
			}
			if i, ok := closedParamIndex(fn, n); ok {
				fn.Summary.addClosesParam(i, &Site{Pos: pos(n), Kind: "close"})
			}
		}
	})
}

// closedParamIndex reports whether call is close(p) of one of fn's own
// channel parameters, and which.
func closedParamIndex(fn *Func, call *ast.CallExpr) (int, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return 0, false
	}
	if b, ok := fn.Pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return 0, false
	}
	return paramIndexOf(fn, call.Args[0])
}

// paramIndexOf resolves an argument expression to one of fn's parameter
// indices, when the argument is a plain reference to that parameter.
func paramIndexOf(fn *Func, arg ast.Expr) (int, bool) {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := fn.Pkg.Info.Uses[id]
	if obj == nil {
		return 0, false
	}
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i, true
		}
	}
	return 0, false
}

// propagate folds callee summaries into callers until nothing changes.
// All three fact families are monotone (sets only grow), so the loop
// terminates; functions are visited in source order each round, keeping
// the representative sites deterministic.
func (p *Program) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fn := range p.funcs {
			for _, call := range fn.Calls {
				for _, target := range call.Targets {
					if target == fn {
						continue
					}
					for kind, site := range target.Summary.Blocks {
						if fn.Summary.Blocks[kind] == nil {
							fn.Summary.addBlock(kind, lifted(target, site))
							changed = true
						}
					}
					for key, site := range target.Summary.Acquires {
						if fn.Summary.Acquires[key] == nil {
							fn.Summary.addAcquire(key, lifted(target, site))
							changed = true
						}
					}
					for j, site := range target.Summary.ClosesParams {
						if j >= len(call.Site.Args) {
							continue
						}
						if i, ok := paramIndexOf(fn, call.Site.Args[j]); ok {
							if fn.Summary.ClosesParams[i] == nil {
								fn.Summary.addClosesParam(i, lifted(target, site))
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

// lifted rebases a callee's site one level up the call chain.
func lifted(target *Func, site *Site) *Site {
	path := make([]string, 0, len(site.Path)+1)
	path = append(path, target.Display())
	path = append(path, site.Path...)
	return &Site{Pos: site.Pos, Kind: site.Kind, Path: path, CondKey: site.CondKey}
}

// SortedAcquires returns the summary's lock keys in deterministic order.
func (s *Summary) SortedAcquires() []LockKey {
	keys := make([]LockKey, 0, len(s.Acquires))
	for k := range s.Acquires {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}
