// Package ipa is the interprocedural layer under feedlint's concurrency
// analyzers (lockorder, hooknil, chanhygiene). It builds a module-wide
// call graph — static calls plus method-set resolution for interface
// dispatch — and per-function summaries of the facts that matter across
// function boundaries: which locks a function may acquire, which blocking
// operations it may reach, and which channel parameters it may close.
// Summaries are propagated over the call graph to a fixpoint, in the
// spirit of golang.org/x/tools/go/analysis fact propagation, so a lock
// passed one call deep or a blocking send buried in a helper is visible
// to the analyzers that consume the Program.
//
// Everything here is stdlib-only (go/ast, go/types) and derived from
// lint.Package, the framework's loaded-module representation.
package ipa

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"

	"asterixfeeds/internal/lint"
)

// Program is the interprocedural view of one loaded module: every
// declared function with a body, its resolved call sites, and its
// summary. A Program is immutable after Build and safe for concurrent
// use by analyzers.
type Program struct {
	// Pkgs are the module packages the program was built from.
	Pkgs []*lint.Package
	// Funcs maps the type-checker's function objects to program nodes.
	Funcs map[*types.Func]*Func

	// funcs is Funcs in deterministic (position) order.
	funcs []*Func
	// targets resolves every call expression in the module (including
	// calls inside go statements and detached literals) to its
	// module-internal candidate targets.
	targets map[*ast.CallExpr][]*Func
	// named are the module-defined named (non-interface) types, used for
	// interface method-set resolution.
	named []*types.Named
	// implCache memoizes implementersOf per interface+method.
	implCache map[string][]*Func

	// CondBinding maps a condition variable's abstract key (the field or
	// package variable holding the *sync.Cond) to the key of the lock it
	// was constructed over: `m.cond = sync.NewCond(&m.mu)` yields
	// {Mongo, cond} → {Mongo, mu}. Cond.Wait requires holding exactly that
	// lock, so analyzers exempt the pair from held-into-blocking reports.
	CondBinding map[LockKey]LockKey
}

// Func is one declared function or method with a body.
type Func struct {
	// Obj is the type-checker object; Decl its syntax; Pkg its package.
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *lint.Package
	// Calls are the call sites on the function's own goroutine (calls
	// under a go statement or inside a detached function literal are
	// excluded), resolved to module-internal targets. Only these
	// propagate summary facts to the caller.
	Calls []Call
	// Summary holds the function's interprocedural facts after Build.
	Summary Summary
}

// Call is one resolved synchronous call site.
type Call struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Targets are the module-internal candidate callees: exactly one for
	// static calls, every implementing method for interface dispatch.
	Targets []*Func
}

// Display renders the function as pkg.Func or pkg.(*Recv).Method with the
// package's short name, the form used in finding messages.
func (f *Func) Display() string {
	obj := f.Obj
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			ptr = "*"
		}
		if n, ok := rt.(*types.Named); ok {
			if ptr != "" {
				name = "(" + ptr + n.Obj().Name() + ")." + name
			} else {
				name = n.Obj().Name() + "." + name
			}
		}
	}
	return shortPkg(obj.Pkg().Path()) + "." + name
}

// shortPkg trims an import path to its last segment: the display form.
func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// build cache: analyzers running concurrently over the same loaded module
// share one Program instead of re-deriving the call graph three times.
var (
	cacheMu sync.Mutex
	cache   = make(map[*lint.Package]*Program)
)

// For returns the Program for pkgs, building it on first use. The cache
// is keyed by the first package's identity: lint loads a module once per
// run, so the same slice contents always mean the same module snapshot.
func For(pkgs []*lint.Package) *Program {
	if len(pkgs) == 0 {
		return &Program{Funcs: map[*types.Func]*Func{}, targets: map[*ast.CallExpr][]*Func{},
			implCache: map[string][]*Func{}, CondBinding: map[LockKey]LockKey{}}
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := cache[pkgs[0]]; ok {
		return p
	}
	p := Build(pkgs)
	cache[pkgs[0]] = p
	return p
}

// Build constructs the call graph and computes summaries to fixpoint.
func Build(pkgs []*lint.Package) *Program {
	p := &Program{
		Pkgs:        pkgs,
		Funcs:       make(map[*types.Func]*Func),
		targets:     make(map[*ast.CallExpr][]*Func),
		implCache:   make(map[string][]*Func),
		CondBinding: make(map[LockKey]LockKey),
	}
	// Pass 1: function nodes and module-defined named types.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Pkg: pkg}
				p.Funcs[obj] = fn
				p.funcs = append(p.funcs, fn)
			}
		}
		if pkg.Pkg == nil {
			continue
		}
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
				p.named = append(p.named, named)
			}
		}
	}
	sort.Slice(p.funcs, func(i, j int) bool { return p.funcs[i].Decl.Pos() < p.funcs[j].Decl.Pos() })
	sort.Slice(p.named, func(i, j int) bool { return p.named[i].Obj().Pos() < p.named[j].Obj().Pos() })

	// Pass 2: resolve every call site; record the synchronous subset on
	// each function for summary propagation.
	for _, fn := range p.funcs {
		p.collectCalls(fn)
	}

	// Pass 3: summaries — direct facts, then propagation to fixpoint.
	for _, fn := range p.funcs {
		p.computeDirect(fn)
	}
	p.propagate()

	// Pass 4: condition-variable bindings.
	for _, pkg := range pkgs {
		collectCondBindings(pkg, p.CondBinding)
	}
	return p
}

// collectCondBindings records, for every `<lhs> = sync.NewCond(<arg>)`
// assignment or declaration in the package, the abstract key of the cond
// holder and of the lock it wraps.
func collectCondBindings(pkg *lint.Package, out map[LockKey]LockKey) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var lhs, rhs []ast.Expr
			switch n := n.(type) {
			case *ast.AssignStmt:
				lhs, rhs = n.Lhs, n.Rhs
			case *ast.ValueSpec:
				for _, name := range n.Names {
					lhs = append(lhs, name)
				}
				rhs = n.Values
			default:
				return true
			}
			for i, r := range rhs {
				if i >= len(lhs) {
					break
				}
				call, ok := ast.Unparen(r).(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					continue
				}
				fnSel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || fnSel.Sel.Name != "NewCond" {
					continue
				}
				obj, ok := pkg.Info.Uses[fnSel.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
					continue
				}
				arg := ast.Unparen(call.Args[0])
				if ue, ok := arg.(*ast.UnaryExpr); ok {
					arg = ue.X
				}
				condKey := exprLockKey(pkg, lhs[i])
				lockKey := exprLockKey(pkg, arg)
				if condKey.Global() && lockKey.Global() {
					out[condKey] = lockKey
				}
			}
			return true
		})
	}
}

// SortedFuncs returns every function in deterministic source order.
func (p *Program) SortedFuncs() []*Func { return p.funcs }

// TargetsOf returns the module-internal candidate callees of a call
// expression anywhere in the module (nil for stdlib calls, builtins, and
// unresolvable function values).
func (p *Program) TargetsOf(call *ast.CallExpr) []*Func { return p.targets[call] }

// collectCalls walks fn's body resolving all calls, and records the
// synchronous ones (reached on fn's own goroutine) in fn.Calls.
func (p *Program) collectCalls(fn *Func) {
	all := func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if ts := p.resolve(fn.Pkg, call); ts != nil {
					p.targets[call] = ts
				}
			}
			return true
		})
	}
	all(fn.Decl.Body)
	WalkSync(fn.Decl.Body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if ts := p.targets[call]; ts != nil {
				fn.Calls = append(fn.Calls, Call{Site: call, Targets: ts})
			}
		}
	})
}

// resolve maps one call expression to its module-internal candidates.
func (p *Program) resolve(pkg *lint.Package, call *ast.CallExpr) []*Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return p.funcFor(obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if types.IsInterface(recv) {
				return p.implementersOf(recv, fun.Sel.Name)
			}
			if obj, ok := sel.Obj().(*types.Func); ok {
				return p.funcFor(obj)
			}
			return nil
		}
		// Package-qualified call, pkg.F(...).
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return p.funcFor(obj)
		}
	}
	return nil
}

func (p *Program) funcFor(obj *types.Func) []*Func {
	if fn, ok := p.Funcs[obj]; ok {
		return []*Func{fn}
	}
	return nil
}

// implementersOf resolves interface dispatch by method sets: every
// module-defined named type (or its pointer) implementing the interface
// contributes its method as a candidate target.
func (p *Program) implementersOf(ifaceType types.Type, method string) []*Func {
	iface, ok := ifaceType.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := types.TypeString(ifaceType, nil) + "." + method
	if ts, ok := p.implCache[key]; ok {
		return ts
	}
	var out []*Func
	seen := make(map[*Func]bool)
	for _, named := range p.named {
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, named.Obj().Pkg(), method)
		if m, ok := obj.(*types.Func); ok {
			if fn, ok := p.Funcs[m]; ok && !seen[fn] {
				seen[fn] = true
				out = append(out, fn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	p.implCache[key] = out
	return out
}

// WalkSync visits the nodes executed on the function's own goroutine, in
// source order: it skips the bodies of go statements entirely and the
// bodies of function literals that are merely constructed (assigned,
// passed, stored) rather than immediately invoked or deferred. Facts a
// summary derives from the visited nodes are therefore things the
// function itself may do when called.
func WalkSync(root ast.Node, visit func(n ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := true
		switch n := n.(type) {
		case *ast.GoStmt:
			descend = false
		case *ast.FuncLit:
			if len(stack) > 0 {
				if call, ok := stack[len(stack)-1].(*ast.CallExpr); !ok || call.Fun != n {
					descend = false
				}
			} else {
				descend = false
			}
		}
		visit(n)
		if !descend {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
