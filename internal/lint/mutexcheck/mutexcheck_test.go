package mutexcheck_test

import (
	"testing"

	"asterixfeeds/internal/lint/linttest"
	"asterixfeeds/internal/lint/mutexcheck"
)

// TestFixture asserts the exact lock-discipline violations in the
// mutexmod fixture: by-value mutex parameter/receiver, a dereference
// copy, and three blocking sends under a held lock — while the pointer
// and unlock-before-send variants stay clean.
func TestFixture(t *testing.T) {
	linttest.RunGolden(t, "mutexmod", mutexcheck.New())
}
