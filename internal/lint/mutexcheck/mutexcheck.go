// Package mutexcheck guards the feed stack's lock discipline. It flags two
// classes of concurrency bugs that the compiler accepts silently:
//
//  1. sync.Mutex / sync.RWMutex / sync.WaitGroup (and other no-copy sync
//     types) passed, received, or assigned by value — the copy has its own
//     state, so the "lock" protects nothing;
//  2. a blocking channel send performed while a lock is held — with
//     bounded inter-node channels (back-pressure by design, §5.3), a full
//     queue turns the send into an unbounded stall with a lock held, which
//     is how ingestion pipelines deadlock.
package mutexcheck

import (
	"go/ast"
	"go/types"

	"asterixfeeds/internal/lint"
)

// Analyzer implements lint.Analyzer; it runs over every package.
type Analyzer struct{}

// New returns the mutexcheck analyzer.
func New() *Analyzer { return &Analyzer{} }

// Name implements lint.Analyzer.
func (*Analyzer) Name() string { return "mutexcheck" }

// Doc implements lint.Analyzer.
func (*Analyzer) Doc() string {
	return "sync primitives copied by value, or locks held across blocking channel sends"
}

// noCopySyncTypes are the sync types whose value semantics break on copy.
var noCopySyncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true,
}

// Run implements lint.Analyzer.
func (a *Analyzer) Run(pkg *lint.Package) []lint.Finding {
	var out []lint.Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				out = append(out, a.checkSignature(pkg, n)...)
				if n.Body != nil {
					out = append(out, a.checkLockSpans(pkg, n.Body)...)
				}
				return true
			case *ast.FuncLit:
				// Literal bodies run later, under their own lock state.
				out = append(out, a.checkLockSpans(pkg, n.Body)...)
				return true
			case *ast.AssignStmt:
				out = append(out, a.checkAssignCopies(pkg, n)...)
			}
			return true
		})
	}
	return out
}

// checkSignature flags receivers, parameters, and results that carry a
// no-copy sync type by value.
func (a *Analyzer) checkSignature(pkg *lint.Package, fn *ast.FuncDecl) []lint.Finding {
	var out []lint.Finding
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pkg.Info.Types[field.Type].Type
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				out = append(out, lint.Finding{
					Pos:     pkg.Fset.Position(field.Type.Pos()),
					Rule:    "mutexcheck",
					Message: fn.Name.Name + ": " + kind + " of type " + t.String() + " copies a sync primitive by value; pass a pointer",
				})
			}
		}
	}
	check(fn.Recv, "receiver")
	check(fn.Type.Params, "parameter")
	check(fn.Type.Results, "result")
	return out
}

// checkAssignCopies flags plain value assignments whose right-hand side is
// an addressable expression of a lock-carrying type (y := x, y = *p,
// v := m[k]); constructing a fresh value via a composite literal is fine.
func (a *Analyzer) checkAssignCopies(pkg *lint.Package, as *ast.AssignStmt) []lint.Finding {
	var out []lint.Finding
	for _, rhs := range as.Rhs {
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		t := pkg.Info.Types[rhs].Type
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t) {
			out = append(out, lint.Finding{
				Pos:     pkg.Fset.Position(rhs.Pos()),
				Rule:    "mutexcheck",
				Message: "assignment copies a value of type " + t.String() + " containing a sync primitive; use a pointer",
			})
		}
	}
	return out
}

// containsLock reports whether t transitively holds a no-copy sync type by
// value (through named types, struct fields, and arrays; never through
// pointers, slices, maps, or channels).
func containsLock(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var rec func(types.Type) bool
	rec = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		if n, ok := t.(*types.Named); ok {
			obj := n.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && noCopySyncTypes[obj.Name()] {
				return true
			}
			return rec(n.Underlying())
		}
		switch u := t.(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if rec(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return rec(u.Elem())
		}
		return false
	}
	return rec(t)
}

// checkLockSpans walks one function body in source order tracking which
// lock receivers are held, and flags blocking channel sends inside a
// Lock/Unlock span. Compound statements are entered with a copy of the
// state (assumed lock-balanced), and a deferred Unlock keeps the lock held
// to the end of the body.
func (a *Analyzer) checkLockSpans(pkg *lint.Package, body *ast.BlockStmt) []lint.Finding {
	var out []lint.Finding
	held := make(map[string]bool)
	a.scanStmts(pkg, body.List, held, &out)
	return out
}

func cloneState(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func anyHeld(held map[string]bool) (string, bool) {
	for k, v := range held {
		if v {
			return k, true
		}
	}
	return "", false
}

func (a *Analyzer) scanStmts(pkg *lint.Package, stmts []ast.Stmt, held map[string]bool, out *[]lint.Finding) {
	for _, s := range stmts {
		a.scanStmt(pkg, s, held, out)
	}
}

func (a *Analyzer) scanStmt(pkg *lint.Package, s ast.Stmt, held map[string]bool, out *[]lint.Finding) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := a.lockOp(pkg, s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				held[recv] = false
			}
		}
	// A DeferStmt with x.Unlock() is deliberately ignored: the deferred
	// unlock runs at function exit, so the lock stays held for the rest
	// of the body and sends below it are still flagged.
	case *ast.SendStmt:
		if recv, yes := anyHeld(held); yes {
			*out = append(*out, lint.Finding{
				Pos:     pkg.Fset.Position(s.Arrow),
				Rule:    "mutexcheck",
				Message: "channel send while holding " + recv + "; a full queue blocks with the lock held",
			})
		}
	case *ast.SelectStmt:
		a.scanSelect(pkg, s, held, out)
	case *ast.BlockStmt:
		a.scanStmts(pkg, s.List, cloneState(held), out)
	case *ast.IfStmt:
		inner := cloneState(held)
		if s.Init != nil {
			a.scanStmt(pkg, s.Init, inner, out)
		}
		a.scanStmts(pkg, s.Body.List, cloneState(inner), out)
		if s.Else != nil {
			a.scanStmt(pkg, s.Else, cloneState(inner), out)
		}
	case *ast.ForStmt:
		inner := cloneState(held)
		if s.Init != nil {
			a.scanStmt(pkg, s.Init, inner, out)
		}
		a.scanStmts(pkg, s.Body.List, inner, out)
	case *ast.RangeStmt:
		a.scanStmts(pkg, s.Body.List, cloneState(held), out)
	case *ast.LabeledStmt:
		a.scanStmt(pkg, s.Stmt, held, out)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.scanStmts(pkg, cc.Body, cloneState(held), out)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.scanStmts(pkg, cc.Body, cloneState(held), out)
			}
		}
	}
}

// scanSelect flags send clauses in a select that has no default clause
// (with a default the select cannot block indefinitely).
func (a *Analyzer) scanSelect(pkg *lint.Package, sel *ast.SelectStmt, held map[string]bool, out *[]lint.Finding) {
	recv, yes := anyHeld(held)
	hasDefault := false
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if send, isSend := cc.Comm.(*ast.SendStmt); isSend && yes && !hasDefault {
			*out = append(*out, lint.Finding{
				Pos:     pkg.Fset.Position(send.Arrow),
				Rule:    "mutexcheck",
				Message: "channel send while holding " + recv + "; a full queue blocks with the lock held",
			})
		}
		a.scanStmts(pkg, cc.Body, cloneState(held), out)
	}
}

// lockOp recognizes x.Lock() / x.RLock() / x.Unlock() / x.RUnlock() calls
// on sync-lock-carrying receivers and returns the receiver's source text
// and the operation name. Without type information it degrades to matching
// by method name alone.
func (a *Analyzer) lockOp(pkg *lint.Package, e ast.Expr) (recv, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if t := pkg.Info.Types[sel.X].Type; t != nil {
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if !isLockType(t) {
			return "", "", false
		}
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isLockType reports whether t is sync.Mutex/sync.RWMutex or a type that
// embeds or contains one by value (promoted Lock methods).
func isLockType(t types.Type) bool {
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
		}
	}
	return containsLock(t)
}
