package archrule_test

import (
	"testing"

	"asterixfeeds/internal/lint/archrule"
	"asterixfeeds/internal/lint/linttest"
)

// TestFixture asserts the exact layering violations in the archmod
// fixture: core→aql, hyracks→core, lsm→storage, aql→cmd/tool, and the
// chaos package reaching past its Restrict-ed lsm symbol surface.
func TestFixture(t *testing.T) {
	linttest.RunGolden(t, "archmod", archrule.New(nil))
}
