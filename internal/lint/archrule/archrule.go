// Package archrule enforces the module's layering DAG at lint time. The
// feed stack only stays correct while the dataflow engine (hyracks),
// storage (lsm/storage), and the feed runtime (core) own their layers and
// never reach around each other; archrule turns that discipline into a
// declarative, import-graph-checked rule table.
package archrule

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"asterixfeeds/internal/lint"
)

// Rule constrains the module-internal imports of packages matching Pkg.
// Patterns match at path-segment boundaries (see lint.MatchPath); "*"
// matches every package.
type Rule struct {
	// Pkg selects the packages this rule governs.
	Pkg string
	// Allow, when non-nil, is the exhaustive whitelist of module-internal
	// imports; anything else is a violation. An empty (non-nil) list
	// forbids all internal imports.
	Allow []string
	// Deny lists imports that are violations regardless of Allow.
	Deny []string
	// Restrict narrows a permitted import to an explicit symbol surface:
	// the key selects an imported package (same pattern syntax as Allow),
	// the value lists the only identifiers of that package the governed
	// packages may reference. Importing the package stays legal; reaching
	// past the listed surface is a violation.
	Restrict map[string][]string
}

// DefaultRules is the asterixfeeds layering table:
//
//   - internal/adm (the data model) sits at the bottom: no internal imports
//   - internal/metrics is self-contained leaf infrastructure: it may be
//     imported from any layer (lsm, hyracks, core) without creating an
//     architecture edge, and imports nothing internal itself
//   - internal/lsm may import only adm and metrics
//   - internal/storage may import only adm, lsm, and metrics
//   - internal/hyracks (the dataflow engine) may import only metrics and,
//     in particular, must never import the feed runtime in internal/core
//     (frame-traffic counting goes through Config.FrameObserver instead)
//   - internal/metadata may import only adm, lsm, and storage
//   - internal/core (the feed runtime) must not reach up into the query
//     layer (aql), the experiment harness, or the module root: the HTTP
//     admin/console layer lives in the root package, strictly above core
//   - nothing imports cmd/ binaries
//
// The pattern "." denotes the module root package (the HTTP/console layer).
var DefaultRules = []Rule{
	{Pkg: "internal/adm", Allow: []string{}},
	{Pkg: "internal/lsm", Allow: []string{"internal/adm", "internal/metrics"}},
	{Pkg: "internal/storage", Allow: []string{"internal/adm", "internal/lsm", "internal/metrics"}},
	{Pkg: "internal/hyracks", Allow: []string{"internal/metrics"}, Deny: []string{"internal/core"}},
	{Pkg: "internal/metrics", Allow: []string{}},
	// The governor is leaf infrastructure like metrics: every layer may
	// consult it (core gates admission, the root wires budgets), but it must
	// not know about any of them — byte sources and pressure signals arrive
	// as injected closures, never as upward imports.
	{Pkg: "internal/governor", Allow: []string{"internal/metrics"}},
	{Pkg: "internal/metadata", Allow: []string{"internal/adm", "internal/lsm", "internal/storage"}},
	{Pkg: "internal/core", Deny: []string{"internal/aql", "internal/experiments", "."}},
	// The chaos harness observes the LSM strictly through its fault-hook
	// surface (Options/FaultHook wiring, the injection sentinels, Open for
	// content digests). Reaching into anything else would let invariant
	// checks depend on internals the faults are supposed to stress.
	{Pkg: "internal/chaos", Deny: []string{"internal/aql", "internal/experiments", "."},
		Restrict: map[string][]string{
			"internal/lsm": {"Options", "FaultHook", "Tree", "Open",
				"ErrInjected", "ErrTornWrite", "ErrCorruptRead"},
		}},
	{Pkg: "*", Deny: []string{"cmd"}},
}

// Analyzer checks each package's imports against a rule table.
type Analyzer struct {
	Rules []Rule
}

// New returns an archrule analyzer over the given table, defaulting to
// DefaultRules.
func New(rules []Rule) *Analyzer {
	if rules == nil {
		rules = DefaultRules
	}
	return &Analyzer{Rules: rules}
}

// Name implements lint.Analyzer.
func (*Analyzer) Name() string { return "archrule" }

// Doc implements lint.Analyzer.
func (*Analyzer) Doc() string {
	return "layering DAG: module-internal imports must follow the architecture rule table"
}

// Run implements lint.Analyzer.
func (a *Analyzer) Run(pkg *lint.Package) []lint.Finding {
	var out []lint.Finding
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			// Only module-internal edges are architecture edges.
			if path != pkg.Module && !strings.HasPrefix(path, pkg.Module+"/") {
				continue
			}
			for _, rule := range a.Rules {
				if !lint.MatchPath(rule.Pkg, pkg.Path) {
					continue
				}
				if msg := rule.check(pkg, path); msg != "" {
					out = append(out, lint.Finding{
						Pos:     pkg.Fset.Position(imp.Pos()),
						Rule:    "archrule",
						Message: msg,
					})
					break // one finding per import is enough
				}
			}
		}
	}
	for _, rule := range a.Rules {
		if rule.Restrict != nil && lint.MatchPath(rule.Pkg, pkg.Path) {
			out = append(out, rule.checkRestrict(pkg)...)
		}
	}
	return out
}

// checkRestrict reports every reference from pkg into a Restrict-ed
// import that names an identifier outside the declared surface. Needs
// type information (to tell a package qualifier from a shadowing local);
// when it is missing the check degrades to silence, like the other
// type-dependent analyzers.
func (r Rule) checkRestrict(pkg *lint.Package) []lint.Finding {
	if pkg.Info == nil {
		return nil
	}
	var out []lint.Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			imported := pn.Imported().Path()
			for pat, allowed := range r.Restrict {
				if !lint.MatchPath(pat, imported) {
					continue
				}
				if contains(allowed, sel.Sel.Name) {
					continue
				}
				surface := append([]string(nil), allowed...)
				sort.Strings(surface)
				out = append(out, lint.Finding{
					Pos:  pkg.Fset.Position(sel.Pos()),
					Rule: "archrule",
					Message: pkg.RelPath() + " may use only {" + strings.Join(surface, ", ") + "} of " +
						strings.TrimPrefix(imported, pkg.Module+"/") + ", got " + sel.Sel.Name,
				})
			}
			return true
		})
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// check reports a non-empty violation message when importing path from a
// package governed by r breaks the rule.
func (r Rule) check(pkg *lint.Package, path string) string {
	rel := strings.TrimPrefix(path, pkg.Module+"/")
	if matchImport(r.Deny, pkg.Module, path) {
		return pkg.RelPath() + " must not import " + rel
	}
	if r.Allow != nil && !matchImport(r.Allow, pkg.Module, path) {
		if len(r.Allow) == 0 {
			return pkg.RelPath() + " must not import any internal package, got " + rel
		}
		return pkg.RelPath() + " may import only {" + strings.Join(r.Allow, ", ") + "}, got " + rel
	}
	return ""
}

// matchImport matches an import path against rule patterns. The pattern "."
// matches exactly the module root package; a bare MatchPath on the module
// path would match every internal package too, which is never what a rule
// about the root layer means.
func matchImport(patterns []string, module, path string) bool {
	for _, p := range patterns {
		if p == "." {
			if path == module {
				return true
			}
			continue
		}
		if lint.MatchPath(p, path) {
			return true
		}
	}
	return false
}
