package lint_test

import (
	"testing"

	"asterixfeeds/internal/lint"
	"asterixfeeds/internal/lint/all"
	"asterixfeeds/internal/lint/linttest"
)

func TestMatchPath(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"internal/core", "asterixfeeds/internal/core", true},
		{"internal/core", "asterixfeeds/internal/core/sub", true},
		{"internal/core", "internal/core", true},
		{"internal/core", "asterixfeeds/internal/corelib", false},
		{"internal/core", "asterixfeeds/internal/lsm", false},
		{"cmd", "asterixfeeds/cmd/feedbench", true},
		{"cmd", "asterixfeeds/internal/cmdutil", false},
		{"*", "anything/at/all", true},
	}
	for _, c := range cases {
		if got := lint.MatchPath(c.pattern, c.path); got != c.want {
			t.Errorf("MatchPath(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

// TestCleanFixture runs the full registered analyzer suite over the
// clean fixture — which exercises goroutines, locks, durability calls,
// and clocks without breaking any rule — and expects an empty golden.
func TestCleanFixture(t *testing.T) {
	linttest.RunGolden(t, "cleanmod", all.Analyzers()...)
}

// TestLoaderResolvesModule checks that the loader finds a fixture module
// root, its module path, and type-checks against stdlib from source.
func TestLoaderResolvesModule(t *testing.T) {
	pkgs, _ := linttest.Fixture(t, "cleanmod")
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Module != "cleanmod" {
			t.Errorf("package %s has module %q, want cleanmod", p.Path, p.Module)
		}
		if len(p.TypeErrors) > 0 {
			t.Errorf("package %s has type errors: %v", p.Path, p.TypeErrors)
		}
		if p.Pkg == nil || p.Info == nil {
			t.Errorf("package %s missing type info", p.Path)
		}
	}
}

// TestRepoIsLintClean is the self-test the acceptance criteria demand:
// the asterixfeeds module itself must produce zero findings.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := lint.NewLoader("..")
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module != "asterixfeeds" {
		t.Fatalf("resolved module %q, want asterixfeeds", loader.Module)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Type-check health matters: several analyzers degrade to weaker
	// syntactic checks without type info, so a quietly type-broken load
	// could mask findings.
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("package %s: type error: %v", p.Path, terr)
		}
	}
	findings := lint.Run(pkgs, all.Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
