// Package lint is a self-contained static-analysis framework for the
// asterixfeeds module, built only on the standard library's go/ast,
// go/parser, and go/types. It exists because the feed stack's correctness
// depends on invariants no compiler checks: layering between the dataflow
// engine, storage, and the feed runtime; lock discipline on hot paths; and
// goroutine hygiene in the ingestion pipeline. Analyzers live in
// subpackages (archrule, mutexcheck, goleak, errdrop, simclock) and are
// driven by cmd/feedlint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the canonical "file:line: [rule] message"
// form used by cmd/feedlint and the fixture goldens.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Analyzer is a single named check run over one package at a time.
type Analyzer interface {
	// Name is the rule id printed in findings, e.g. "archrule".
	Name() string
	// Doc is a one-line description shown by feedlint -list.
	Doc() string
	// Run reports violations found in pkg.
	Run(pkg *Package) []Finding
}

// Package is one loaded, parsed, type-checked package handed to analyzers.
// Test files (*_test.go) are never included: feedlint guards production
// invariants, and tests legitimately use real clocks, drop errors, etc.
type Package struct {
	// Path is the full import path, e.g. "asterixfeeds/internal/core".
	Path string
	// Module is the module path from go.mod, e.g. "asterixfeeds".
	Module string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by filename.
	Files []*ast.File
	// Pkg is the type-checked package; non-nil even when TypeErrors is
	// not empty (go/types returns partial results).
	Pkg *types.Package
	// Info carries Types, Defs, Uses, and Selections for Files.
	Info *types.Info
	// TypeErrors collects soft type-check failures. Analyzers degrade to
	// syntactic checks when type information is missing.
	TypeErrors []error
}

// RelPath is Path with the module prefix stripped; the module root package
// itself becomes ".".
func (p *Package) RelPath() string {
	if p.Path == p.Module {
		return "."
	}
	return strings.TrimPrefix(p.Path, p.Module+"/")
}

// MatchPath reports whether pattern matches the import path at segment
// boundaries. A pattern like "internal/core" matches
// "asterixfeeds/internal/core" and any package beneath it
// ("asterixfeeds/internal/core/sub"), but not "internal/corelib".
func MatchPath(pattern, path string) bool {
	if pattern == "*" || pattern == path {
		return true
	}
	if strings.HasPrefix(path, pattern+"/") || strings.HasSuffix(path, "/"+pattern) {
		return true
	}
	return strings.Contains(path, "/"+pattern+"/")
}

// MatchAny reports whether any pattern matches path.
func MatchAny(patterns []string, path string) bool {
	for _, p := range patterns {
		if MatchPath(p, path) {
			return true
		}
	}
	return false
}

// allowDirective is the comment prefix suppressing a finding, as in
//
//	//feedlint:allow simclock -- canonical real-clock fallback
//
// A directive on the same line as the finding, or on a line directly above
// it, suppresses findings of that rule (or every rule, for "all").
const allowDirective = "//feedlint:allow"

// suppressions maps file -> line -> set of rule names allowed there.
type suppressions map[string]map[string]map[string]bool

func (s suppressions) add(file string, line int, rule string) {
	if s[file] == nil {
		s[file] = make(map[string]map[string]bool)
	}
	key := fmt.Sprint(line)
	if s[file][key] == nil {
		s[file][key] = make(map[string]bool)
	}
	s[file][key][rule] = true
}

func (s suppressions) allows(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if rules := lines[fmt.Sprint(line)]; rules != nil {
			if rules[f.Rule] || rules["all"] {
				return true
			}
		}
	}
	return false
}

// collectSuppressions scans a package's comments for allow directives.
func collectSuppressions(pkg *Package, sup suppressions) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
				// Strip an optional "-- reason" suffix.
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, rule := range strings.Fields(rest) {
					sup.add(pos.Filename, pos.Line, rule)
				}
			}
		}
	}
}

// Run executes every analyzer over every package, drops suppressed
// findings, and returns the remainder sorted by file, line, and rule.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	sup := make(suppressions)
	for _, pkg := range pkgs {
		collectSuppressions(pkg, sup)
	}
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			for _, f := range a.Run(pkg) {
				if !sup.allows(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}
