package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the canonical "file:line: [rule] message"
// form used by cmd/feedlint and the fixture goldens.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Analyzer is the common surface of every check. Concrete analyzers also
// implement PackageAnalyzer (independent per-package checks) or
// ModuleAnalyzer (whole-module checks needing the cross-package view, e.g.
// the interprocedural analyzers built on internal/lint/ipa).
type Analyzer interface {
	// Name is the rule id printed in findings, e.g. "archrule".
	Name() string
	// Doc is a one-line description shown by feedlint -list.
	Doc() string
}

// PackageAnalyzer is a check run over one package at a time; packages may
// be analyzed concurrently, so Run must not mutate analyzer state.
type PackageAnalyzer interface {
	Analyzer
	// Run reports violations found in pkg.
	Run(pkg *Package) []Finding
}

// ModuleAnalyzer is a check run once over the whole loaded module, for
// rules that cross package boundaries (call graphs, lock-order graphs).
type ModuleAnalyzer interface {
	Analyzer
	// RunModule reports violations found anywhere in pkgs.
	RunModule(pkgs []*Package) []Finding
}

// Package is one loaded, parsed, type-checked package handed to analyzers.
// Test files (*_test.go) are never included: feedlint guards production
// invariants, and tests legitimately use real clocks, drop errors, etc.
type Package struct {
	// Path is the full import path, e.g. "asterixfeeds/internal/core".
	Path string
	// Module is the module path from go.mod, e.g. "asterixfeeds".
	Module string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by filename.
	Files []*ast.File
	// Pkg is the type-checked package; non-nil even when TypeErrors is
	// not empty (go/types returns partial results).
	Pkg *types.Package
	// Info carries Types, Defs, Uses, and Selections for Files.
	Info *types.Info
	// TypeErrors collects soft type-check failures. Analyzers degrade to
	// syntactic checks when type information is missing.
	TypeErrors []error
}

// RelPath is Path with the module prefix stripped; the module root package
// itself becomes ".".
func (p *Package) RelPath() string {
	if p.Path == p.Module {
		return "."
	}
	return strings.TrimPrefix(p.Path, p.Module+"/")
}

// MatchPath reports whether pattern matches the import path at segment
// boundaries. A pattern like "internal/core" matches
// "asterixfeeds/internal/core" and any package beneath it
// ("asterixfeeds/internal/core/sub"), but not "internal/corelib".
func MatchPath(pattern, path string) bool {
	if pattern == "*" || pattern == path {
		return true
	}
	if strings.HasPrefix(path, pattern+"/") || strings.HasSuffix(path, "/"+pattern) {
		return true
	}
	return strings.Contains(path, "/"+pattern+"/")
}

// MatchAny reports whether any pattern matches path.
func MatchAny(patterns []string, path string) bool {
	for _, p := range patterns {
		if MatchPath(p, path) {
			return true
		}
	}
	return false
}

// allowDirective is the comment prefix suppressing a finding, as in
//
//	//feedlint:allow simclock -- canonical real-clock fallback
//
// A directive on the same line as the finding, or on a line directly above
// it, suppresses findings of that rule (or every rule, for "all").
const allowDirective = "//feedlint:allow"

// AllowSite is one rule named by a //feedlint:allow directive, kept so the
// audit can report directives that no longer suppress anything.
type AllowSite struct {
	// Pos locates the directive comment.
	Pos token.Position
	// Rule is one rule name the directive waives ("all" waives every rule).
	Rule string
	used bool
}

// suppressions maps file -> line -> rule name -> directive site.
type suppressions struct {
	byLine map[string]map[int]map[string]*AllowSite
	sites  []*AllowSite
}

func newSuppressions() *suppressions {
	return &suppressions{byLine: make(map[string]map[int]map[string]*AllowSite)}
}

func (s *suppressions) add(pos token.Position, rule string) {
	if s.byLine[pos.Filename] == nil {
		s.byLine[pos.Filename] = make(map[int]map[string]*AllowSite)
	}
	if s.byLine[pos.Filename][pos.Line] == nil {
		s.byLine[pos.Filename][pos.Line] = make(map[string]*AllowSite)
	}
	if s.byLine[pos.Filename][pos.Line][rule] != nil {
		return
	}
	site := &AllowSite{Pos: pos, Rule: rule}
	s.byLine[pos.Filename][pos.Line][rule] = site
	s.sites = append(s.sites, site)
}

// allows reports whether f is waived by a directive on its line or the
// line above, marking the matching directive as used.
func (s *suppressions) allows(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, rule := range []string{f.Rule, "all"} {
			if site := lines[line][rule]; site != nil {
				site.used = true
				return true
			}
		}
	}
	return false
}

// unused returns the directive sites that suppressed nothing, sorted.
func (s *suppressions) unused() []AllowSite {
	var out []AllowSite
	for _, site := range s.sites {
		if !site.used {
			out = append(out, *site)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// collectSuppressions scans a package's comments for allow directives.
func collectSuppressions(pkg *Package, sup *suppressions) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
				// Strip an optional "-- reason" suffix.
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, rule := range strings.Fields(rest) {
					sup.add(pos, rule)
				}
			}
		}
	}
}

// Stats carries the run's side products: wall time per analyzer (summed
// across packages) and the stale-suppression audit.
type Stats struct {
	// AnalyzerTime is the cumulative Run/RunModule wall time per analyzer.
	AnalyzerTime map[string]time.Duration
	// UnusedAllows lists //feedlint:allow directives that suppressed no
	// finding in this run — stale waivers that should be deleted.
	UnusedAllows []AllowSite
}

// Run executes every analyzer over every package, drops suppressed
// findings, and returns the remainder sorted by file, line, and rule.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	findings, _ := RunWithStats(pkgs, analyzers)
	return findings
}

// RunWithStats is Run plus per-analyzer timings and the stale-allow audit.
// Package analyzers run concurrently across packages (one worker per
// package, bounded by GOMAXPROCS); module analyzers run concurrently with
// each other. Analyzers must therefore keep Run/RunModule free of shared
// mutable state.
func RunWithStats(pkgs []*Package, analyzers []Analyzer) ([]Finding, Stats) {
	sup := newSuppressions()
	for _, pkg := range pkgs {
		collectSuppressions(pkg, sup)
	}

	var pkgAnalyzers []PackageAnalyzer
	var modAnalyzers []ModuleAnalyzer
	stats := Stats{AnalyzerTime: make(map[string]time.Duration)}
	for _, a := range analyzers {
		switch a := a.(type) {
		case PackageAnalyzer:
			pkgAnalyzers = append(pkgAnalyzers, a)
		case ModuleAnalyzer:
			modAnalyzers = append(modAnalyzers, a)
		default:
			panic(fmt.Sprintf("lint: analyzer %s implements neither PackageAnalyzer nor ModuleAnalyzer", a.Name()))
		}
	}

	var (
		mu  sync.Mutex
		raw []Finding
		wg  sync.WaitGroup
		sem = make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	)
	record := func(name string, elapsed time.Duration, findings []Finding) {
		mu.Lock()
		defer mu.Unlock()
		stats.AnalyzerTime[name] += elapsed
		raw = append(raw, findings...)
	}
	for _, pkg := range pkgs {
		wg.Add(1)
		go func(pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for _, a := range pkgAnalyzers {
				start := time.Now()
				fs := a.Run(pkg)
				record(a.Name(), time.Since(start), fs)
			}
		}(pkg)
	}
	for _, a := range modAnalyzers {
		wg.Add(1)
		go func(a ModuleAnalyzer) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			fs := a.RunModule(pkgs)
			record(a.Name(), time.Since(start), fs)
		}(a)
	}
	wg.Wait()

	var out []Finding
	for _, f := range raw {
		if !sup.allows(f) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	stats.UnusedAllows = sup.unused()
	return out, stats
}
