package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// sharedFset positions every file any Loader in this process parses or
// imports. Sharing one FileSet (token.FileSet is safe for concurrent use)
// is what lets the expensive stdlib importers below be memoized across
// loaders: a types.Package produced for one fixture module is reusable by
// the next, instead of re-type-checking the standard library per module.
var sharedFset = token.NewFileSet()

// stdImporters hands out the process-wide stdlib importers. The "source"
// importer type-checks the standard library from $GOROOT/src (no build
// cache needed); the "gc" importer reads compiled export data and is an
// order of magnitude faster, but depends on the toolchain's build cache
// (feedlint -faststd). Both memoize imported packages internally, and both
// are serialized by stdMu because neither documents concurrency safety.
var stdImporters struct {
	once   sync.Once
	source types.ImporterFrom
	gc     types.ImporterFrom
}

var stdMu sync.Mutex

func stdImporter(fast bool) types.ImporterFrom {
	stdImporters.once.Do(func() {
		stdImporters.source = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
		stdImporters.gc = importer.ForCompiler(sharedFset, "gc", nil).(types.ImporterFrom)
	})
	if fast {
		return stdImporters.gc
	}
	return stdImporters.source
}

// SkippedFile records a source file the loader excluded from analysis,
// with the build constraint that excluded it. feedlint -v prints these so
// an unsatisfiable tag can never silently hide a file from the analyzers.
type SkippedFile struct {
	// Path is the absolute path of the excluded file.
	Path string
	// Reason names the constraint, e.g. `build tags "windows" not satisfied`.
	Reason string
}

// Loader parses and type-checks every package of one Go module using only
// the standard library. Stdlib imports are resolved from source via
// go/importer's "source" compiler by default (no build cache or export
// data required) or from gc export data when FastStd is set;
// module-internal imports are resolved recursively by the loader itself.
type Loader struct {
	// RootDir is the absolute directory containing go.mod.
	RootDir string
	// Module is the module path declared in go.mod.
	Module string
	// FastStd, when set before the first Load, resolves stdlib imports
	// from compiled export data instead of type-checking $GOROOT/src.
	// Much faster, but requires a primed toolchain build cache.
	FastStd bool
	// Skipped lists files excluded by build constraints, in load order.
	Skipped []SkippedFile

	fset    *token.FileSet
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the module containing dir (walking up to the nearest
// go.mod) and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		RootDir: root,
		Module:  modPath,
		fset:    sharedFset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file without
// golang.org/x/mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// LoadAll walks the module tree and loads every package, skipping
// testdata, vendor, hidden, and underscore-prefixed directories. Packages
// are returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.Walk(l.RootDir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != l.RootDir &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.RootDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.Module)
		} else {
			paths = append(paths, l.Module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if errors.Is(err, errAllFilesExcluded) {
			// Every file in the directory is behind an unsatisfied build
			// constraint; the exclusions are recorded in l.Skipped.
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the module-internal package at importPath,
// caching the result.
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := l.RootDir
	if importPath != l.Module {
		rel := strings.TrimPrefix(importPath, l.Module+"/")
		dir = filepath.Join(l.RootDir, filepath.FromSlash(rel))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	var files []*ast.File
	excluded := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: read %s: %w", name, err)
		}
		if reason, ok := excludedByBuild(name, src); ok {
			l.Skipped = append(l.Skipped, SkippedFile{Path: path, Reason: reason})
			excluded++
			continue
		}
		f, err := parser.ParseFile(l.fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		if excluded > 0 {
			return nil, fmt.Errorf("lint: %s: %w", importPath, errAllFilesExcluded)
		}
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	pkg := &Package{
		Path:   importPath,
		Module: l.Module,
		Dir:    dir,
		Fset:   l.fset,
		Files:  files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns a usable (partial) package even on type errors; those
	// are recorded in pkg.TypeErrors and analyzers degrade gracefully.
	tpkg, _ := conf.Check(importPath, l.fset, files, pkg.Info)
	pkg.Pkg = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Import implements types.Importer, routing module-internal paths through
// the loader and everything else to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.RootDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	// Stdlib packages go through the process-wide memoized importer; the
	// mutex serializes loaders running in parallel (test binaries, the
	// per-root goroutines in cmd/feedlint) over its internal cache.
	stdMu.Lock()
	defer stdMu.Unlock()
	return stdImporter(l.FastStd).ImportFrom(path, dir, mode)
}
