package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks every package of one Go module using only
// the standard library. Stdlib imports are resolved from source via
// go/importer's "source" compiler, so no build cache or export data is
// required; module-internal imports are resolved recursively by the loader
// itself.
type Loader struct {
	// RootDir is the absolute directory containing go.mod.
	RootDir string
	// Module is the module path declared in go.mod.
	Module string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the module containing dir (walking up to the nearest
// go.mod) and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		RootDir: root,
		Module:  modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file without
// golang.org/x/mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// LoadAll walks the module tree and loads every package, skipping
// testdata, vendor, hidden, and underscore-prefixed directories. Packages
// are returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.Walk(l.RootDir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != l.RootDir &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.RootDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.Module)
		} else {
			paths = append(paths, l.Module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the module-internal package at importPath,
// caching the result.
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := l.RootDir
	if importPath != l.Module {
		rel := strings.TrimPrefix(importPath, l.Module+"/")
		dir = filepath.Join(l.RootDir, filepath.FromSlash(rel))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	pkg := &Package{
		Path:   importPath,
		Module: l.Module,
		Dir:    dir,
		Fset:   l.fset,
		Files:  files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns a usable (partial) package even on type errors; those
	// are recorded in pkg.TypeErrors and analyzers degrade gracefully.
	tpkg, _ := conf.Check(importPath, l.fset, files, pkg.Info)
	pkg.Pkg = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Import implements types.Importer, routing module-internal paths through
// the loader and everything else to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.RootDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
