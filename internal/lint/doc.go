// Package lint is a self-contained static-analysis framework for the
// asterixfeeds module, built only on the standard library's go/ast,
// go/parser, and go/types. It exists because the feed stack's correctness
// depends on invariants no compiler checks: layering between the dataflow
// engine, storage, and the feed runtime; lock discipline on hot paths; and
// goroutine hygiene in the ingestion pipeline. Analyzers live in
// subpackages — per-package checks (archrule, mutexcheck, goleak,
// errdrop, simclock) and whole-module interprocedural checks built on the
// internal/lint/ipa call-graph engine (lockorder, hooknil, chanhygiene) —
// are registered in internal/lint/all and driven by cmd/feedlint.
package lint
