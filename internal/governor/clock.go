package governor

import "time"

// nowFunc is the governor's clock indirection point, mirroring the idiom of
// internal/core: the simclock analyzer (cmd/feedlint) forbids direct
// time.Now()/time.Since() calls in this package so deterministic harnesses
// can pin time; everything reads the clock through this hook instead.
var nowFunc = time.Now
