package governor

import (
	"sync/atomic"
	"testing"
	"time"
)

// pinClock freezes the package clock at a fixed instant and returns a
// function that advances it; the real clock is restored at cleanup.
func pinClock(t *testing.T) func(time.Duration) {
	t.Helper()
	var mu atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	nowFunc = func() time.Time { return base.Add(time.Duration(mu.Load())) }
	t.Cleanup(func() { nowFunc = time.Now })
	return func(d time.Duration) { mu.Add(int64(d)) }
}

func newTestGovernor(budget int64) (*Governor, *atomic.Int64) {
	g := New("n1", Config{BudgetBytes: budget, PressureInterval: -1})
	var tracked atomic.Int64
	g.RegisterSource("test", tracked.Load)
	return g, &tracked
}

func TestDefaults(t *testing.T) {
	g := New("n1", Config{})
	if g.Budget() != DefaultBudgetBytes {
		t.Fatalf("budget = %d, want %d", g.Budget(), DefaultBudgetBytes)
	}
	if g.Node() != "n1" {
		t.Fatalf("node = %q", g.Node())
	}
	if g.ObserveOnly() {
		t.Fatal("observe-only by default")
	}
}

func TestPressureIsMaxOfBytesAndSignals(t *testing.T) {
	g, tracked := newTestGovernor(1 << 20)
	var extra atomic.Int64
	g.RegisterSource("extra", extra.Load)
	tracked.Store(256 << 10)
	extra.Store(256 << 10)
	if got := g.TrackedBytes(); got != 512<<10 {
		t.Fatalf("tracked = %d, want sources summed = %d", got, 512<<10)
	}
	if p := g.Pressure(); p != 0.5 {
		t.Fatalf("pressure = %v, want 0.5", p)
	}
	sig := atomic.Int64{}
	g.RegisterSignal("stall", func() float64 { return float64(sig.Load()) / 100 })
	sig.Store(90)
	if p := g.Pressure(); p != 0.9 {
		t.Fatalf("pressure with dominant signal = %v, want 0.9", p)
	}
	sig.Store(10) // signal below byte pressure: bytes win
	if p := g.Pressure(); p != 0.5 {
		t.Fatalf("pressure with weak signal = %v, want 0.5", p)
	}
	// Negative source values are clamped, never reduce the total.
	extra.Store(-1 << 30)
	if got := g.TrackedBytes(); got != 256<<10 {
		t.Fatalf("tracked with negative source = %d, want %d", got, 256<<10)
	}
}

func TestQuiescentPressureIsZero(t *testing.T) {
	g, tracked := newTestGovernor(1 << 20)
	tracked.Store(2 << 20)
	if !g.OverBudget() {
		t.Fatal("2x budget not over budget")
	}
	tracked.Store(0)
	if g.TrackedBytes() != 0 || g.Pressure() != 0 || g.OverBudget() {
		t.Fatalf("quiescent governor reports tracked=%d pressure=%v", g.TrackedBytes(), g.Pressure())
	}
}

func TestPressureCache(t *testing.T) {
	advance := pinClock(t)
	g := New("n1", Config{BudgetBytes: 1 << 20, PressureInterval: 10 * time.Millisecond})
	var tracked atomic.Int64
	g.RegisterSource("test", tracked.Load)
	tracked.Store(100)
	if got := g.TrackedBytes(); got != 100 {
		t.Fatalf("first read = %d", got)
	}
	tracked.Store(200)
	if got := g.TrackedBytes(); got != 100 {
		t.Fatalf("read within TTL = %d, want cached 100", got)
	}
	advance(20 * time.Millisecond)
	if got := g.TrackedBytes(); got != 200 {
		t.Fatalf("read after TTL = %d, want fresh 200", got)
	}
	// Snapshot always measures fresh, bypassing the cache.
	tracked.Store(300)
	if s := g.Snapshot(); s.TrackedBytes != 300 {
		t.Fatalf("snapshot tracked = %d, want fresh 300", s.TrackedBytes)
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{"": ClassNormal, "normal": ClassNormal, "low": ClassLow, "high": ClassHigh} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Fatalf("ParseClass(%q) = %v, %v", in, got, err)
		}
		if got.String() == "" {
			t.Fatalf("class %v has empty string form", got)
		}
	}
	if _, err := ParseClass("urgent"); err == nil {
		t.Fatal("ParseClass accepted unknown class")
	}
}

func TestClassGatingOrder(t *testing.T) {
	pinClock(t)
	g, tracked := newTestGovernor(1 << 20)
	low := g.Admission("feed:lo", ClassLow)
	norm := g.Admission("feed:no", ClassNormal)
	hi := g.Admission("feed:hi", ClassHigh)

	// Below every threshold: nobody is gated.
	tracked.Store(512 << 10) // pressure 0.5
	for _, a := range []*Admission{low, norm, hi} {
		if a.Admit(4096, 4) != Admit {
			t.Fatalf("%s gated at pressure 0.5", a.Name())
		}
	}

	// Moderate pressure (0.8): only low is metered. The clock is pinned,
	// so once low's burst is spent it sheds while normal still admits.
	tracked.Store(800 << 10)
	lowAdmitted := 0
	for i := 0; i < 100; i++ {
		if low.Admit(1024, 1) == Admit {
			lowAdmitted++
		}
	}
	if lowAdmitted == 0 {
		t.Fatal("low admitted nothing: metering should start from a burst, not zero")
	}
	if lowAdmitted == 100 {
		t.Fatal("low never gated at pressure 0.8")
	}
	for i := 0; i < 100; i++ {
		if norm.Admit(1024, 1) != Admit {
			t.Fatal("normal gated at pressure 0.8")
		}
	}

	// Severe pressure (2.0): low and normal gated, high still untouched.
	tracked.Store(2 << 20)
	normAdmitted := 0
	for i := 0; i < 200; i++ {
		if norm.Admit(1024, 1) == Admit {
			normAdmitted++
		}
	}
	if normAdmitted == 0 || normAdmitted == 200 {
		t.Fatalf("normal admitted %d/200 at pressure 2.0, want metered but non-zero", normAdmitted)
	}
	for i := 0; i < 200; i++ {
		if hi.Admit(1<<20, 1) != Admit {
			t.Fatal("high-priority admission gated")
		}
	}
}

func TestTokenRefillAndReset(t *testing.T) {
	advance := pinClock(t)
	g, tracked := newTestGovernor(1 << 20)
	low := g.Admission("feed:lo", ClassLow)
	tracked.Store(2 << 20) // well over budget

	drain := func() (n int) {
		for i := 0; i < 1000; i++ {
			if low.Admit(1024, 1) != Admit {
				return n
			}
			n++
		}
		t.Fatal("bucket never drained")
		return
	}
	first := drain()
	if first == 0 {
		t.Fatal("no initial burst")
	}
	// Refill at the low rate (budget/64 per second): after 1s the bucket
	// holds min(burst, rate*1s) = burst again (burst is rate/4).
	advance(time.Second)
	if got := drain(); got != first {
		t.Fatalf("refilled burst admitted %d frames, first burst %d", got, first)
	}
	// An idle stretch below threshold resets the bucket: no banked tokens.
	tracked.Store(0)
	if low.Admit(1024, 1) != Admit {
		t.Fatal("gated below threshold")
	}
	advance(time.Hour)
	tracked.Store(2 << 20)
	if got := drain(); got > first {
		t.Fatalf("idle hour banked tokens: drained %d > burst %d", got, first)
	}
}

func TestOversizedBatchStillProgresses(t *testing.T) {
	advance := pinClock(t)
	g, tracked := newTestGovernor(1 << 20)
	norm := g.Admission("head:x", ClassNormal)
	tracked.Store(2 << 20)
	// A batch far larger than the burst costs the whole bucket rather
	// than never fitting: one admit per full refill.
	if norm.Admit(8<<20, 1) != Admit {
		t.Fatal("oversized batch refused on a full bucket")
	}
	if norm.Admit(8<<20, 1) != Shed {
		t.Fatal("second oversized batch admitted from an empty bucket")
	}
	advance(time.Second)
	if norm.Admit(8<<20, 1) != Admit {
		t.Fatal("oversized batch refused after refill")
	}
}

func TestObserveOnlyAlwaysAdmits(t *testing.T) {
	pinClock(t)
	g := New("n1", Config{BudgetBytes: 1 << 10, ObserveOnly: true, PressureInterval: -1})
	var tracked atomic.Int64
	g.RegisterSource("test", tracked.Load)
	tracked.Store(1 << 30)
	low := g.Admission("feed:lo", ClassLow)
	for i := 0; i < 100; i++ {
		if low.Admit(1<<20, 1) != Admit {
			t.Fatal("observe-only governor shed traffic")
		}
	}
	if !g.OverBudget() {
		t.Fatal("observe-only governor must still report pressure")
	}
}

func TestWaitAdmitsWhenPressureDrops(t *testing.T) {
	g, tracked := newTestGovernor(1 << 20)
	norm := g.Admission("head:x", ClassNormal)
	tracked.Store(2 << 20)
	for i := 0; i < 1000 && norm.Admit(1024, 1) == Admit; i++ {
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		tracked.Store(0)
	}()
	done := make(chan bool, 1)
	go func() { done <- norm.Wait(1024, 1, nil) }()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Wait returned false without cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not unblock after pressure dropped")
	}
	if g.Delays.Value() == 0 {
		t.Fatal("blocking wait not counted")
	}
}

func TestWaitCancel(t *testing.T) {
	pinClock(t)
	g, tracked := newTestGovernor(1 << 20)
	norm := g.Admission("head:x", ClassNormal)
	tracked.Store(2 << 20)
	for i := 0; i < 1000 && norm.Admit(1024, 1) == Admit; i++ {
	}
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- norm.Wait(1024, 1, cancel) }()
	close(cancel)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Wait admitted despite pinned clock and sustained pressure")
		}
	case <-time.After(time.Second):
		t.Fatal("Wait ignored cancel")
	}
}

func TestAdmissionLifecycleAndSnapshot(t *testing.T) {
	pinClock(t)
	g, tracked := newTestGovernor(1 << 20)
	a := g.Admission("feed:a", ClassLow)
	if again := g.Admission("feed:a", ClassHigh); again != a {
		t.Fatal("re-registering created a second admission")
	} else if again.Class() != ClassHigh {
		t.Fatal("re-registering did not update the class")
	}
	g.Admission("feed:b", ClassNormal)

	tracked.Store(512 << 10)
	a.Admit(2048, 2)
	a.CountShed(3)
	s := g.Snapshot()
	if s.Node != "n1" || s.BudgetBytes != 1<<20 || s.TrackedBytes != 512<<10 {
		t.Fatalf("snapshot header = %+v", s)
	}
	if s.Sources["test"] != 512<<10 {
		t.Fatalf("snapshot sources = %v", s.Sources)
	}
	if len(s.Admissions) != 2 || s.Admissions[0].Name != "feed:a" || s.Admissions[1].Name != "feed:b" {
		t.Fatalf("snapshot admissions = %+v", s.Admissions)
	}
	if got := s.Admissions[0]; got.Class != "high" || got.AdmittedRecords != 2 || got.ShedRecords != 3 {
		t.Fatalf("admission snapshot = %+v", got)
	}
	if s.AdmittedBytes != 2048 || s.ShedRecords != 3 {
		t.Fatalf("node counters = admitted %d shed %d", s.AdmittedBytes, s.ShedRecords)
	}
	if g.ShedFrames.Value() != 1 || g.AdmittedRecords.Value() != 2 {
		t.Fatalf("frame/record counters = %d/%d", g.ShedFrames.Value(), g.AdmittedRecords.Value())
	}

	g.DropAdmission("feed:a")
	if s := g.Snapshot(); len(s.Admissions) != 1 || s.Admissions[0].Name != "feed:b" {
		t.Fatalf("admissions after drop = %+v", s.Admissions)
	}
}
