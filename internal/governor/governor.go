package governor

import (
	"sort"
	"sync"
	"time"

	"asterixfeeds/internal/metrics"
)

// ServiceName is the node-service key under which each node's Governor is
// registered with its hyracks.NodeController.
const ServiceName = "ingestion-governor"

// DefaultBudgetBytes is the node memory budget when the config does not
// override it. It bounds governor-tracked bytes (backlogs, spill files,
// memtables, in-flight frames), not the process heap.
const DefaultBudgetBytes = 64 << 20

// defaultPressureInterval caches pressure computations: the byte sources
// walk subscriptions and storage stats, which would be wasteful to redo on
// every offered frame.
const defaultPressureInterval = time.Millisecond

// Config tunes a node's Governor.
type Config struct {
	// BudgetBytes is the node-wide memory budget; <=0 means
	// DefaultBudgetBytes.
	BudgetBytes int64
	// ObserveOnly keeps byte accounting and pressure reporting live but
	// forces every admission decision to Admit — the governor watches
	// without governing. Benchmarks use it to measure ungoverned growth.
	ObserveOnly bool
	// PressureInterval bounds how often tracked bytes and pressure are
	// recomputed; 0 means defaultPressureInterval, negative disables the
	// cache entirely (every query recomputes — tests use this).
	PressureInterval time.Duration
}

type namedSource struct {
	name string
	fn   func() int64
}

type namedSignal struct {
	name string
	fn   func() float64
}

// Governor is one node's ingestion arbiter: registered byte sources sum
// into tracked bytes, registered signals contribute additional pressure,
// and per-connection Admissions meter intake against the resulting
// pressure. All methods are safe for concurrent use.
//
// Locking discipline: the governor never calls a source, signal, or any
// other external code while holding one of its own locks — sources
// routinely take subscription and storage locks, and intake paths query the
// governor while holding theirs, so a callback under a governor lock would
// close a lock cycle.
type Governor struct {
	node    string
	budget  int64
	observe bool
	ttl     time.Duration

	mu      sync.Mutex
	sources []namedSource
	signals []namedSignal
	adms    map[string]*Admission

	cacheMu        sync.Mutex
	cachedAt       time.Time
	cachedTracked  int64
	cachedPressure float64

	// Decision counters, published by the embedding instance as
	// node.<n>.governor.* series. AdmittedBytes/AdmittedRecords count
	// traffic the governor let through; ShedFrames/ShedRecords count
	// records actually dropped on a Shed decision (reported by the caller
	// via Admission.CountShed — a Shed decision a non-lossy policy converts
	// to spill is not a shed); Delays counts blocking-gate episodes;
	// ElasticVetoes counts scale-outs refused while over budget.
	AdmittedBytes   metrics.Counter
	AdmittedRecords metrics.Counter
	ShedFrames      metrics.Counter
	ShedRecords     metrics.Counter
	Delays          metrics.Counter
	ElasticVetoes   metrics.Counter
}

// New creates the governor for one node.
func New(node string, cfg Config) *Governor {
	budget := cfg.BudgetBytes
	if budget <= 0 {
		budget = DefaultBudgetBytes
	}
	ttl := cfg.PressureInterval
	if ttl == 0 {
		ttl = defaultPressureInterval
	}
	return &Governor{
		node:    node,
		budget:  budget,
		observe: cfg.ObserveOnly,
		ttl:     ttl,
		adms:    make(map[string]*Admission),
	}
}

// Node returns the owning node's name.
func (g *Governor) Node() string { return g.node }

// Budget returns the node memory budget in bytes.
func (g *Governor) Budget() int64 { return g.budget }

// ObserveOnly reports whether admission decisions are disabled.
func (g *Governor) ObserveOnly() bool { return g.observe }

// RegisterSource adds a named byte source to the tracked total. The
// function is called outside governor locks and must be safe for concurrent
// use; negative returns count as zero.
func (g *Governor) RegisterSource(name string, fn func() int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sources = append(g.sources, namedSource{name, fn})
}

// RegisterSignal adds a named pressure signal: a function returning a
// pressure contribution on the same scale as bytes/budget (1.0 means "at
// budget"). Effective pressure is the maximum of the byte pressure and all
// signals, so a stalling LSM raises pressure even while tracked bytes look
// healthy.
func (g *Governor) RegisterSignal(name string, fn func() float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.signals = append(g.signals, namedSignal{name, fn})
}

// measure recomputes tracked bytes and pressure. Sources and signals are
// copied out under the lock and invoked outside it (see the locking
// discipline above).
func (g *Governor) measure() (tracked int64, pressure float64) {
	g.mu.Lock()
	srcs := append([]namedSource(nil), g.sources...)
	sigs := append([]namedSignal(nil), g.signals...)
	g.mu.Unlock()
	for _, s := range srcs {
		if v := s.fn(); v > 0 {
			tracked += v
		}
	}
	pressure = float64(tracked) / float64(g.budget)
	for _, s := range sigs {
		if v := s.fn(); v > pressure {
			pressure = v
		}
	}
	return tracked, pressure
}

// load returns tracked bytes and pressure, recomputing at most once per
// PressureInterval.
func (g *Governor) load() (tracked int64, pressure float64) {
	if g.ttl > 0 {
		g.cacheMu.Lock()
		if !g.cachedAt.IsZero() && nowFunc().Sub(g.cachedAt) < g.ttl {
			t, p := g.cachedTracked, g.cachedPressure
			g.cacheMu.Unlock()
			return t, p
		}
		g.cacheMu.Unlock()
	}
	tracked, pressure = g.measure()
	if g.ttl > 0 {
		g.cacheMu.Lock()
		g.cachedAt = nowFunc()
		g.cachedTracked = tracked
		g.cachedPressure = pressure
		g.cacheMu.Unlock()
	}
	return tracked, pressure
}

// TrackedBytes returns the current sum of all byte sources.
func (g *Governor) TrackedBytes() int64 {
	t, _ := g.load()
	return t
}

// Pressure returns the current effective pressure: max(tracked/budget,
// signals). 1.0 means the node is exactly at budget.
func (g *Governor) Pressure() float64 {
	_, p := g.load()
	return p
}

// OverBudget reports whether effective pressure has reached 1.0; elastic
// scale-out decisions consult this.
func (g *Governor) OverBudget() bool { return g.Pressure() >= 1 }

// Admission returns (creating if needed) the named admission handle, set to
// the given priority class. Re-requesting an existing name updates its
// class — a reconnect under a different policy re-prioritizes in place.
func (g *Governor) Admission(name string, class Class) *Admission {
	g.mu.Lock()
	defer g.mu.Unlock()
	if a, ok := g.adms[name]; ok {
		a.SetClass(class)
		return a
	}
	a := &Admission{g: g, name: name}
	a.SetClass(class)
	g.adms[name] = a
	return a
}

// DropAdmission forgets the named admission; teardown paths call this so a
// departed connection's handle stops appearing in snapshots.
func (g *Governor) DropAdmission(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.adms, name)
}

// SourceBytes reports each registered source's current contribution.
func (g *Governor) SourceBytes() map[string]int64 {
	g.mu.Lock()
	srcs := append([]namedSource(nil), g.sources...)
	g.mu.Unlock()
	out := make(map[string]int64, len(srcs))
	for _, s := range srcs {
		v := s.fn()
		if v < 0 {
			v = 0
		}
		out[s.name] += v
	}
	return out
}

// AdmissionSnapshot is one admission handle's counters for the console.
type AdmissionSnapshot struct {
	Name            string `json:"name"`
	Class           string `json:"class"`
	AdmittedRecords int64  `json:"admittedRecords"`
	ShedRecords     int64  `json:"shedRecords"`
	Delays          int64  `json:"delays"`
}

// Snapshot is one node's governor state for the console (/governor).
type Snapshot struct {
	Node          string              `json:"node"`
	BudgetBytes   int64               `json:"budgetBytes"`
	TrackedBytes  int64               `json:"trackedBytes"`
	Pressure      float64             `json:"pressure"`
	ObserveOnly   bool                `json:"observeOnly,omitempty"`
	Sources       map[string]int64    `json:"sources"`
	AdmittedBytes int64               `json:"admittedBytes"`
	ShedRecords   int64               `json:"shedRecords"`
	Delays        int64               `json:"delays"`
	ElasticVetoes int64               `json:"elasticVetoes"`
	Admissions    []AdmissionSnapshot `json:"admissions,omitempty"`
}

// Snapshot assembles the console view of this governor.
func (g *Governor) Snapshot() Snapshot {
	tracked, pressure := g.measure()
	s := Snapshot{
		Node:          g.node,
		BudgetBytes:   g.budget,
		TrackedBytes:  tracked,
		Pressure:      pressure,
		ObserveOnly:   g.observe,
		Sources:       g.SourceBytes(),
		AdmittedBytes: g.AdmittedBytes.Value(),
		ShedRecords:   g.ShedRecords.Value(),
		Delays:        g.Delays.Value(),
		ElasticVetoes: g.ElasticVetoes.Value(),
	}
	g.mu.Lock()
	adms := make([]*Admission, 0, len(g.adms))
	for _, a := range g.adms {
		adms = append(adms, a)
	}
	g.mu.Unlock()
	for _, a := range adms {
		s.Admissions = append(s.Admissions, a.snapshot())
	}
	sort.Slice(s.Admissions, func(i, j int) bool { return s.Admissions[i].Name < s.Admissions[j].Name })
	return s
}
