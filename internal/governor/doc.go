// Package governor implements node-wide ingestion admission control: a
// byte-accounted memory budget fed by pluggable byte sources (LSM memtable
// and immutable-queue bytes, subscription backlog and spill bytes, in-flight
// frame bytes) and pressure signals (LSM write stalls, compaction debt),
// arbitrating between feeds with per-connection token-bucket admissions and
// policy-declared priority classes.
//
// The paper's ingestion policies (spill/discard/throttle, §7.3) act per
// subscription; nothing arbitrates *between* feeds or bounds a node's total
// memory. The governor closes that gap: each node runs one Governor whose
// Pressure() is the maximum of tracked-bytes/budget and the registered
// signals. Under pressure, low-priority feeds are shed or metered first
// while high-priority feeds are never gated, so a sustained flood degrades
// the node gracefully instead of growing memory without bound.
//
// The package sits beside internal/metrics in the layering DAG: it imports
// only metrics, and the layers it arbitrates (core, hyracks, storage) feed
// it through registered closures rather than direct imports. The embedding
// instance registers each node's Governor as the "ingestion-governor" node
// service and publishes its counters as node.<n>.governor.* metric series.
package governor
