package governor

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Class is a feed's priority class, declared in its ingestion policy
// (metadata param "ingestion.priority"). Under pressure, lower classes are
// metered and shed first; ClassHigh is never gated.
type Class int32

const (
	ClassLow Class = iota
	ClassNormal
	ClassHigh
)

// ParseClass maps the policy parameter value to a Class; the empty string
// means ClassNormal.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "normal":
		return ClassNormal, nil
	case "low":
		return ClassLow, nil
	case "high":
		return ClassHigh, nil
	}
	return ClassNormal, fmt.Errorf("governor: unknown priority class %q (want low, normal, or high)", s)
}

func (c Class) String() string {
	switch c {
	case ClassLow:
		return "low"
	case ClassHigh:
		return "high"
	}
	return "normal"
}

// threshold is the pressure at which this class starts being metered.
// ClassHigh returns an unreachable threshold: high-priority feeds are never
// gated, which is what keeps their latency flat while a flood is shed.
func (c Class) threshold() float64 {
	switch c {
	case ClassLow:
		return 0.75
	case ClassHigh:
		return maxPressure
	}
	return 0.9
}

// rateFraction is the metered intake rate once over threshold, as a
// fraction of the node budget per second. Low-priority feeds are squeezed
// to a trickle; normal feeds keep a meaningful but bounded rate.
func (c Class) rateFraction() float64 {
	if c == ClassLow {
		return 1.0 / 64
	}
	return 1.0 / 4
}

// maxPressure is an effectively-infinite threshold (pressure is a ratio
// around 1.0, so this is never reached).
const maxPressure = 1 << 30

// Decision is the outcome of an admission check.
type Decision int

const (
	// Admit lets the traffic through.
	Admit Decision = iota
	// Shed tells the caller to drop (lossy policies) or divert to disk
	// (non-lossy policies) instead of growing memory.
	Shed
)

// waitPoll is the blocking-gate retry interval.
const waitPoll = time.Millisecond

// burstWindow sizes a bucket's burst as this much time worth of the
// metered rate.
const burstWindow = time.Second / 4

// Admission is one metered entry point (a feed connection's intake, or a
// collect head) into a governed node. It is a token bucket that is only
// consulted while node pressure exceeds the class threshold; below it,
// traffic passes untouched and the bucket stays full, so metering starts
// from a short burst rather than a stale surplus.
type Admission struct {
	g     *Governor
	name  string
	class atomic.Int32

	mu     sync.Mutex
	tokens float64
	full   bool
	last   time.Time

	admittedRecords atomic.Int64
	shedRecords     atomic.Int64
	delays          atomic.Int64
}

// Name returns the admission's registered name.
func (a *Admission) Name() string { return a.name }

// Class returns the current priority class.
func (a *Admission) Class() Class { return Class(a.class.Load()) }

// SetClass updates the priority class; safe to call concurrently with
// admissions in flight.
func (a *Admission) SetClass(c Class) { a.class.Store(int32(c)) }

// Admit decides whether a batch of the given size may enter the node now.
// It never blocks. On Admit the traffic is counted; on Shed the caller
// chooses the consequence (drop, spill, retry) and reports actual drops via
// CountShed.
func (a *Admission) Admit(bytes, records int64) Decision {
	cls := a.Class()
	if a.g.observe || cls == ClassHigh {
		a.countAdmit(bytes, records)
		return Admit
	}
	_, pressure := a.g.load()
	if pressure < cls.threshold() {
		a.refill(cls, true)
		a.countAdmit(bytes, records)
		return Admit
	}
	if a.take(float64(bytes), cls) {
		a.countAdmit(bytes, records)
		return Admit
	}
	return Shed
}

// Wait blocks until the batch is admitted or cancel fires; it returns
// false only on cancel. Non-lossy pipeline stages (collect heads) use it
// so that under pressure they slow down instead of dropping.
func (a *Admission) Wait(bytes, records int64, cancel <-chan struct{}) bool {
	if a.Admit(bytes, records) == Admit {
		return true
	}
	a.delays.Add(1)
	a.g.Delays.Add(1)
	for {
		select {
		case <-cancel:
			return false
		case <-time.After(waitPoll):
		}
		if a.Admit(bytes, records) == Admit {
			return true
		}
	}
}

// CountShed records that the caller actually dropped records after a Shed
// decision. Callers that convert Shed into spill or backpressure must not
// call it — the governor's shed counters mean lost records, nothing softer.
func (a *Admission) CountShed(records int64) {
	a.shedRecords.Add(records)
	a.g.ShedFrames.Add(1)
	a.g.ShedRecords.Add(records)
}

func (a *Admission) countAdmit(bytes, records int64) {
	a.admittedRecords.Add(records)
	a.g.AdmittedBytes.Add(bytes)
	a.g.AdmittedRecords.Add(records)
}

// refill advances the bucket clock. With toFull set (pressure below
// threshold) the bucket snaps to its burst size so metering always begins
// from the same small allowance.
func (a *Admission) refill(cls Class, toFull bool) {
	rate := cls.rateFraction() * float64(a.g.budget)
	burst := rate * burstWindow.Seconds()
	a.mu.Lock()
	defer a.mu.Unlock()
	now := nowFunc()
	if toFull {
		a.tokens = burst
		a.full = true
		a.last = now
		return
	}
	if a.full || a.last.IsZero() {
		// First gated refill after an ungated stretch: start from the
		// burst, don't accrue the idle time.
		a.tokens = burst
		a.full = false
	} else {
		a.tokens += rate * now.Sub(a.last).Seconds()
		if a.tokens > burst {
			a.tokens = burst
		}
	}
	a.last = now
}

// take attempts to spend cost tokens. A batch larger than the burst costs
// the whole bucket instead of never fitting, so oversized frames still make
// progress (at a slower effective rate) rather than deadlocking Wait.
func (a *Admission) take(cost float64, cls Class) bool {
	a.refill(cls, false)
	rate := cls.rateFraction() * float64(a.g.budget)
	burst := rate * burstWindow.Seconds()
	if cost > burst {
		cost = burst
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tokens >= cost {
		a.tokens -= cost
		return true
	}
	return false
}

func (a *Admission) snapshot() AdmissionSnapshot {
	return AdmissionSnapshot{
		Name:            a.name,
		Class:           a.Class().String(),
		AdmittedRecords: a.admittedRecords.Load(),
		ShedRecords:     a.shedRecords.Load(),
		Delays:          a.delays.Load(),
	}
}
