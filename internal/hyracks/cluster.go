package hyracks

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes cluster timing and dataflow parameters. The zero value is
// usable; unset fields assume the defaults below.
type Config struct {
	// HeartbeatInterval is how often node controllers report liveness.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long the cluster controller waits without a
	// heartbeat before declaring a node dead.
	HeartbeatTimeout time.Duration
	// QueueDepth is the per-task input queue depth in frames; a full
	// queue exerts back-pressure on producers.
	QueueDepth int
	// FrameCapacity is the default number of records per frame for
	// operators that batch their output.
	FrameCapacity int
	// ScheduleDelay models the job planning and task-dispatch round
	// trips a distributed Hyracks deployment pays per job submission;
	// StartJob blocks this long before launching tasks. Zero (the
	// default) disables it. The batch-inserts experiment (Table 5.1)
	// sets it so per-statement overheads are realistic.
	ScheduleDelay time.Duration
	// Clock, when set, replaces the real clock for heartbeat stamping
	// and failure detection, letting deterministic experiments drive
	// time explicitly.
	Clock func() time.Time
	// FrameFault, when non-nil, runs at every consumer frame boundary —
	// after a task dequeues a frame, before the operator sees it — with
	// the hosting node's ID and the operator's name. Only fault-injection
	// harnesses set this (see internal/chaos): the hook may stall the
	// task or kill the node; node liveness is rechecked after it returns
	// so an injected kill lands exactly on the frame boundary.
	FrameFault func(node, op string, f *Frame)
	// FrameObserver, when non-nil, runs at every consumer frame boundary
	// with the hosting node's ID, the operator's name, and the frame about
	// to be delivered. Unlike FrameFault it must be side-effect-free on
	// the dataflow: it exists so an embedding layer can count per-node
	// frame traffic without hyracks importing a metrics package. Nil (the
	// default) keeps the uninstrumented path branch-predictable.
	FrameObserver func(node, op string, f *Frame)
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 6 * c.HeartbeatInterval
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.FrameCapacity <= 0 {
		c.FrameCapacity = 128
	}
	return c
}

// ClusterEventKind classifies cluster membership events.
type ClusterEventKind int

// Cluster membership events.
const (
	// NodeJoined fires when a node controller joins the cluster.
	NodeJoined ClusterEventKind = iota
	// NodeDead fires when the cluster controller stops receiving a
	// node's heartbeats.
	NodeDead
)

// ClusterEvent notifies subscribers of membership changes.
type ClusterEvent struct {
	Kind   ClusterEventKind
	NodeID string
}

// JobEventKind classifies job lifecycle events.
type JobEventKind int

// Job lifecycle events.
const (
	// EventJobStarted fires when a job's tasks have been scheduled.
	EventJobStarted JobEventKind = iota
	// EventJobCompleted fires on graceful completion.
	EventJobCompleted
	// EventJobFailed fires when any task fails or a hosting node dies.
	EventJobFailed
)

// JobEvent notifies subscribers of job lifecycle transitions.
type JobEvent struct {
	Kind  JobEventKind
	JobID JobID
	Name  string
	Err   error
}

// NodeController is one simulated worker node: it hosts task goroutines,
// node-local services (storage manager, feed manager), and heartbeats its
// liveness to the cluster controller.
type NodeController struct {
	id   string
	dead chan struct{}

	// inflight tracks the bytes of frames enqueued toward this node's
	// tasks but not yet dequeued — the execution layer's contribution to
	// the ingestion governor's memory accounting.
	inflight atomic.Int64

	mu       sync.Mutex
	services map[string]any
	killed   bool
}

// ID returns the node's name.
func (n *NodeController) ID() string { return n.id }

// Dead returns a channel closed when the node has been killed.
func (n *NodeController) Dead() <-chan struct{} { return n.dead }

// Alive reports whether the node is still up.
func (n *NodeController) Alive() bool {
	select {
	case <-n.dead:
		return false
	default:
		return true
	}
}

// SetService installs a node-local service under name.
func (n *NodeController) SetService(name string, svc any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.services[name] = svc
}

// Service returns the node-local service registered under name, or nil.
func (n *NodeController) Service(name string) any {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.services[name]
}

// InFlightFrameBytes reports the bytes of frames currently queued toward
// this node's tasks (enqueued by producers, not yet dequeued by runTask).
func (n *NodeController) InFlightFrameBytes() int64 { return n.inflight.Load() }

func (n *NodeController) addInFlight(delta int64) { n.inflight.Add(delta) }

func (n *NodeController) kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed {
		return
	}
	n.killed = true
	close(n.dead)
}

// Cluster is a simulated shared-nothing cluster: one cluster controller and
// a set of node controllers, all in-process.
type Cluster struct {
	cfg Config

	mu        sync.Mutex
	nodes     map[string]*NodeController
	alive     map[string]bool
	lastBeat  map[string]time.Time
	clusterFn map[int]func(ClusterEvent)
	jobFn     map[int]func(JobEvent)
	subSeq    int
	jobs      map[JobID]*JobHandle
	closed    bool
	stopMon   chan struct{}
	monWG     sync.WaitGroup
}

// NewCluster creates a cluster with the given node names and starts the
// heartbeat monitor. Close must be called to release the monitor.
func NewCluster(cfg Config, nodeNames ...string) *Cluster {
	c := &Cluster{
		cfg:       cfg.withDefaults(),
		nodes:     make(map[string]*NodeController),
		alive:     make(map[string]bool),
		lastBeat:  make(map[string]time.Time),
		clusterFn: make(map[int]func(ClusterEvent)),
		jobFn:     make(map[int]func(JobEvent)),
		jobs:      make(map[JobID]*JobHandle),
		stopMon:   make(chan struct{}),
	}
	for _, name := range nodeNames {
		c.AddNode(name)
	}
	c.monWG.Add(1)
	go c.monitor()
	return c
}

// Config returns the cluster's effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// AddNode adds a node controller to the cluster (a node "joining").
func (c *Cluster) AddNode(name string) (*NodeController, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("hyracks: cluster closed")
	}
	if _, exists := c.nodes[name]; exists {
		c.mu.Unlock()
		return nil, fmt.Errorf("hyracks: node %q already exists", name)
	}
	n := &NodeController{id: name, dead: make(chan struct{}), services: make(map[string]any)}
	c.nodes[name] = n
	c.alive[name] = true
	c.lastBeat[name] = c.now()
	subs := c.clusterSubsLocked()
	c.mu.Unlock()

	// Start the node's heartbeat loop.
	c.monWG.Add(1)
	go c.heartbeatLoop(n)

	for _, fn := range subs {
		fn(ClusterEvent{Kind: NodeJoined, NodeID: name})
	}
	return n, nil
}

func (c *Cluster) heartbeatLoop(n *NodeController) {
	defer c.monWG.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.mu.Lock()
			if c.alive[n.id] {
				c.lastBeat[n.id] = c.now()
			}
			c.mu.Unlock()
		case <-n.dead:
			return
		case <-c.stopMon:
			return
		}
	}
}

// monitor is the cluster controller's failure detector: it scans heartbeat
// timestamps and declares nodes dead after HeartbeatTimeout of silence.
func (c *Cluster) monitor() {
	defer c.monWG.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.checkHeartbeats()
		case <-c.stopMon:
			return
		}
	}
}

func (c *Cluster) checkHeartbeats() {
	now := c.now()
	var deadNodes []string
	c.mu.Lock()
	for id, ok := range c.alive {
		if ok && now.Sub(c.lastBeat[id]) > c.cfg.HeartbeatTimeout {
			c.alive[id] = false
			deadNodes = append(deadNodes, id)
		}
	}
	subs := c.clusterSubsLocked()
	c.mu.Unlock()
	sort.Strings(deadNodes)
	for _, id := range deadNodes {
		for _, fn := range subs {
			fn(ClusterEvent{Kind: NodeDead, NodeID: id})
		}
	}
}

// KillNode simulates a hard failure of the named node: its tasks halt, its
// queues drop, and its heartbeats stop, so the cluster controller will
// declare it dead within HeartbeatTimeout.
func (c *Cluster) KillNode(name string) error {
	c.mu.Lock()
	n, ok := c.nodes[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("hyracks: unknown node %q", name)
	}
	n.kill()
	return nil
}

// Node returns the named node controller, or nil.
func (c *Cluster) Node(name string) *NodeController {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// AliveNodes returns the names of nodes the cluster controller currently
// believes to be alive, sorted.
func (c *Cluster) AliveNodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for id, ok := range c.alive {
		if ok {
			// Double-check local liveness so scheduling after a kill but
			// before heartbeat-timeout detection does not pick a dead node.
			if n := c.nodes[id]; n != nil && n.Alive() {
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	return out
}

// AllNodes returns every node name ever added, sorted.
func (c *Cluster) AllNodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SubscribeCluster registers fn for cluster membership events; the returned
// function unsubscribes.
func (c *Cluster) SubscribeCluster(fn func(ClusterEvent)) (cancel func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.subSeq
	c.subSeq++
	c.clusterFn[id] = fn
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.clusterFn, id)
	}
}

// SubscribeJobs registers fn for job lifecycle events; the returned function
// unsubscribes.
func (c *Cluster) SubscribeJobs(fn func(JobEvent)) (cancel func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.subSeq
	c.subSeq++
	c.jobFn[id] = fn
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.jobFn, id)
	}
}

func (c *Cluster) clusterSubsLocked() []func(ClusterEvent) {
	out := make([]func(ClusterEvent), 0, len(c.clusterFn))
	for _, fn := range c.clusterFn {
		out = append(out, fn)
	}
	return out
}

func (c *Cluster) jobSubs() []func(JobEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]func(JobEvent), 0, len(c.jobFn))
	for _, fn := range c.jobFn {
		out = append(out, fn)
	}
	return out
}

func (c *Cluster) emitJobEvent(ev JobEvent) {
	for _, fn := range c.jobSubs() {
		fn(ev)
	}
}

// Close shuts the cluster down: cancels running jobs, kills all nodes, and
// stops the monitor.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	jobs := make([]*JobHandle, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	nodes := make([]*NodeController, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()

	for _, j := range jobs {
		j.Cancel()
	}
	for _, j := range jobs {
		j.Wait() //nolint:errcheck // shutting down
	}
	for _, n := range nodes {
		n.kill()
	}
	close(c.stopMon)
	c.monWG.Wait()
}
