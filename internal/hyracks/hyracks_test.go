package hyracks

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  30 * time.Millisecond,
		QueueDepth:        4,
		FrameCapacity:     16,
	}
}

// genOp emits count records, each an 8-byte little-endian sequence number
// offset by the partition index.
type genOp struct {
	count int
}

func (g *genOp) Name() string { return "gen" }

func (g *genOp) CreateRuntime(ctx *TaskContext, out Writer) (OperatorRuntime, error) {
	return &genRuntime{op: g, ctx: ctx, out: out}, nil
}

type genRuntime struct {
	op  *genOp
	ctx *TaskContext
	out Writer
}

func (r *genRuntime) Open() error            { return r.out.Open() }
func (r *genRuntime) NextFrame(*Frame) error { return errors.New("gen is a source") }
func (r *genRuntime) Close() error           { return r.out.Close() }
func (r *genRuntime) Fail(err error)         { r.out.Fail(err) }

func (r *genRuntime) Run() error {
	defer r.out.Close()
	f := NewFrame(8)
	for i := 0; i < r.op.count; i++ {
		select {
		case <-r.ctx.Canceled:
			return nil
		default:
		}
		rec := make([]byte, 8)
		binary.LittleEndian.PutUint64(rec, uint64(i*r.ctx.NumPartitions+r.ctx.Partition))
		f.Append(rec)
		if f.Len() == 8 {
			if err := r.out.NextFrame(f); err != nil {
				return err
			}
			f = NewFrame(8)
		}
	}
	if f.Len() > 0 {
		return r.out.NextFrame(f)
	}
	return nil
}

// collectOp gathers every record it sees into a shared sink.
type collectOp struct {
	mu   sync.Mutex
	recs map[string][]uint64 // per node
}

func newCollectOp() *collectOp { return &collectOp{recs: make(map[string][]uint64)} }

func (c *collectOp) Name() string { return "collect" }

func (c *collectOp) CreateRuntime(ctx *TaskContext, out Writer) (OperatorRuntime, error) {
	return &collectRuntime{op: c, ctx: ctx, out: out}, nil
}

func (c *collectOp) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, rs := range c.recs {
		n += len(rs)
	}
	return n
}

func (c *collectOp) all() map[uint64]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]int)
	for _, rs := range c.recs {
		for _, r := range rs {
			out[r]++
		}
	}
	return out
}

type collectRuntime struct {
	op  *collectOp
	ctx *TaskContext
	out Writer
}

func (r *collectRuntime) Open() error { return r.out.Open() }

func (r *collectRuntime) NextFrame(f *Frame) error {
	r.op.mu.Lock()
	for _, rec := range f.Records {
		r.op.recs[r.ctx.NodeID] = append(r.op.recs[r.ctx.NodeID], binary.LittleEndian.Uint64(rec))
	}
	r.op.mu.Unlock()
	return r.out.NextFrame(f)
}

func (r *collectRuntime) Close() error   { return r.out.Close() }
func (r *collectRuntime) Fail(err error) { r.out.Fail(err) }

// failOp returns an error on the nth record it sees.
type failOp struct {
	failAt int64
	seen   atomic.Int64
}

func (f *failOp) Name() string { return "failer" }

func (f *failOp) CreateRuntime(ctx *TaskContext, out Writer) (OperatorRuntime, error) {
	return &failRuntime{op: f, out: out}, nil
}

type failRuntime struct {
	op  *failOp
	out Writer
}

func (r *failRuntime) Open() error { return r.out.Open() }

func (r *failRuntime) NextFrame(f *Frame) error {
	for range f.Records {
		if r.op.seen.Add(1) >= r.op.failAt {
			return errors.New("synthetic operator failure")
		}
	}
	return r.out.NextFrame(f)
}

func (r *failRuntime) Close() error   { return r.out.Close() }
func (r *failRuntime) Fail(err error) { r.out.Fail(err) }

func leUint64Hash(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec) }

func TestSimpleJobOneToOne(t *testing.T) {
	c := NewCluster(testConfig(), "A", "B")
	defer c.Close()

	spec := &JobSpec{Name: "simple"}
	sink := newCollectOp()
	gen := spec.AddOperator(&genOp{count: 100}, LocationConstraint("A", "B"))
	col := spec.AddOperator(sink, LocationConstraint("A", "B"))
	spec.Connect(gen, col, OneToOne, nil)

	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := sink.total(); got != 200 {
		t.Fatalf("collected %d records, want 200", got)
	}
	seen := sink.all()
	for i := 0; i < 200; i++ {
		if seen[uint64(i)] != 1 {
			t.Fatalf("record %d seen %d times", i, seen[uint64(i)])
		}
	}
	if j.Status() != JobFinished {
		t.Fatalf("status = %v, want finished", j.Status())
	}
}

func TestHashPartitionRoutesByKey(t *testing.T) {
	c := NewCluster(testConfig(), "A", "B", "C")
	defer c.Close()

	spec := &JobSpec{Name: "hash"}
	sink := newCollectOp()
	gen := spec.AddOperator(&genOp{count: 300}, CountConstraint(1))
	col := spec.AddOperator(sink, LocationConstraint("A", "B", "C"))
	spec.Connect(gen, col, MToNHashPartition, leUint64Hash)

	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if sink.total() != 300 {
		t.Fatalf("collected %d, want 300", sink.total())
	}
	// Every record with the same key must land on the same node; since
	// keys are unique here we instead check distribution across >1 node.
	sink.mu.Lock()
	nodes := len(sink.recs)
	sink.mu.Unlock()
	if nodes < 2 {
		t.Fatalf("hash partitioning used %d nodes, want >= 2", nodes)
	}
}

func TestRandomPartitionBalances(t *testing.T) {
	c := NewCluster(testConfig(), "A", "B")
	defer c.Close()

	spec := &JobSpec{Name: "rand"}
	sink := newCollectOp()
	gen := spec.AddOperator(&genOp{count: 160}, CountConstraint(1))
	col := spec.AddOperator(sink, LocationConstraint("A", "B"))
	spec.Connect(gen, col, MToNRandomPartition, nil)

	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.recs["A"]) == 0 || len(sink.recs["B"]) == 0 {
		t.Fatalf("round robin left a consumer idle: A=%d B=%d", len(sink.recs["A"]), len(sink.recs["B"]))
	}
}

func TestReplicateDeliversToAll(t *testing.T) {
	c := NewCluster(testConfig(), "A", "B")
	defer c.Close()

	spec := &JobSpec{Name: "repl"}
	sink := newCollectOp()
	gen := spec.AddOperator(&genOp{count: 50}, CountConstraint(1))
	col := spec.AddOperator(sink, LocationConstraint("A", "B"))
	spec.Connect(gen, col, MToNReplicate, nil)

	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if sink.total() != 100 {
		t.Fatalf("replicate delivered %d, want 100", sink.total())
	}
}

func TestOperatorErrorFailsJob(t *testing.T) {
	c := NewCluster(testConfig(), "A")
	defer c.Close()

	spec := &JobSpec{Name: "failing"}
	gen := spec.AddOperator(&genOp{count: 1000}, CountConstraint(1))
	fl := spec.AddOperator(&failOp{failAt: 10}, CountConstraint(1))
	sink := spec.AddOperator(newCollectOp(), CountConstraint(1))
	spec.Connect(gen, fl, OneToOne, nil)
	spec.Connect(fl, sink, OneToOne, nil)

	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	err = j.Wait()
	if err == nil {
		t.Fatal("job with failing operator completed, want error")
	}
	if j.Status() != JobFailed {
		t.Fatalf("status = %v, want failed", j.Status())
	}
}

func TestNodeDeathFailsJobAndFiresClusterEvent(t *testing.T) {
	c := NewCluster(testConfig(), "A", "B")
	defer c.Close()

	deadCh := make(chan string, 4)
	cancel := c.SubscribeCluster(func(ev ClusterEvent) {
		if ev.Kind == NodeDead {
			deadCh <- ev.NodeID
		}
	})
	defer cancel()

	// A source that runs until canceled.
	spec := &JobSpec{Name: "longrun"}
	gen := spec.AddOperator(&infiniteOp{}, LocationConstraint("B"))
	sink := spec.AddOperator(newCollectOp(), LocationConstraint("B"))
	spec.Connect(gen, sink, OneToOne, nil)

	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := c.KillNode("B"); err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err == nil {
		t.Fatal("job survived node death, want failure")
	}
	select {
	case id := <-deadCh:
		if id != "B" {
			t.Fatalf("dead node = %q, want B", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no NodeDead cluster event after kill")
	}
	alive := c.AliveNodes()
	if len(alive) != 1 || alive[0] != "A" {
		t.Fatalf("AliveNodes = %v, want [A]", alive)
	}
}

// infiniteOp emits frames until canceled.
type infiniteOp struct{}

func (i *infiniteOp) Name() string { return "infinite" }

func (i *infiniteOp) CreateRuntime(ctx *TaskContext, out Writer) (OperatorRuntime, error) {
	return &infiniteRuntime{ctx: ctx, out: out}, nil
}

type infiniteRuntime struct {
	ctx *TaskContext
	out Writer
}

func (r *infiniteRuntime) Open() error            { return r.out.Open() }
func (r *infiniteRuntime) NextFrame(*Frame) error { return errors.New("source") }
func (r *infiniteRuntime) Close() error           { return r.out.Close() }
func (r *infiniteRuntime) Fail(err error)         { r.out.Fail(err) }

func (r *infiniteRuntime) Run() error {
	defer r.out.Close()
	rec := make([]byte, 8)
	for seq := uint64(0); ; seq++ {
		select {
		case <-r.ctx.Canceled:
			return nil
		default:
		}
		binary.LittleEndian.PutUint64(rec, seq)
		f := NewFrame(1)
		f.Append(append([]byte(nil), rec...))
		if err := r.out.NextFrame(f); err != nil {
			return nil
		}
	}
}

func TestCancelStopsLongRunningJob(t *testing.T) {
	c := NewCluster(testConfig(), "A")
	defer c.Close()

	spec := &JobSpec{Name: "cancelme"}
	gen := spec.AddOperator(&infiniteOp{}, CountConstraint(1))
	sink := spec.AddOperator(newCollectOp(), CountConstraint(1))
	spec.Connect(gen, sink, OneToOne, nil)

	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	j.Cancel()
	if err := j.Wait(); !errors.Is(err, ErrJobCanceled) {
		t.Fatalf("Wait after cancel = %v, want ErrJobCanceled", err)
	}
	if j.Status() != JobCanceled {
		t.Fatalf("status = %v, want canceled", j.Status())
	}
}

func TestJobEvents(t *testing.T) {
	c := NewCluster(testConfig(), "A")
	defer c.Close()

	var mu sync.Mutex
	var events []JobEventKind
	cancel := c.SubscribeJobs(func(ev JobEvent) {
		mu.Lock()
		events = append(events, ev.Kind)
		mu.Unlock()
	})
	defer cancel()

	spec := &JobSpec{Name: "events"}
	gen := spec.AddOperator(&genOp{count: 10}, CountConstraint(1))
	sink := spec.AddOperator(newCollectOp(), CountConstraint(1))
	spec.Connect(gen, sink, OneToOne, nil)
	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	// Allow the completion event goroutine to fire.
	deadline := time.After(time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("events = %v, want [started completed]", events)
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if events[0] != EventJobStarted || events[1] != EventJobCompleted {
		t.Fatalf("events = %v, want [EventJobStarted EventJobCompleted]", events)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	empty := &JobSpec{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty spec validated")
	}

	selfLoop := &JobSpec{Name: "loop"}
	op := selfLoop.AddOperator(&genOp{}, CountConstraint(1))
	selfLoop.Connect(op, op, OneToOne, nil)
	if err := selfLoop.Validate(); err == nil {
		t.Error("self loop validated")
	}

	noHash := &JobSpec{Name: "nohash"}
	a := noHash.AddOperator(&genOp{}, CountConstraint(1))
	b := noHash.AddOperator(newCollectOp(), CountConstraint(1))
	noHash.Connect(a, b, MToNHashPartition, nil)
	if err := noHash.Validate(); err == nil {
		t.Error("hash connector without KeyHash validated")
	}
}

func TestPinToDeadNodeIsRejected(t *testing.T) {
	c := NewCluster(testConfig(), "A", "B")
	defer c.Close()
	if err := c.KillNode("B"); err != nil {
		t.Fatal(err)
	}
	spec := &JobSpec{Name: "pinned"}
	spec.AddOperator(&genOp{count: 1}, LocationConstraint("B"))
	if _, err := c.StartJob(spec); err == nil {
		t.Fatal("job pinned to dead node started")
	}
}

func TestCountConstraintSpreadsOverNodes(t *testing.T) {
	c := NewCluster(testConfig(), "A", "B", "C")
	defer c.Close()
	spec := &JobSpec{Name: "count"}
	sink := newCollectOp()
	gen := spec.AddOperator(&genOp{count: 30}, CountConstraint(3))
	col := spec.AddOperator(sink, CountConstraint(3))
	spec.Connect(gen, col, OneToOne, nil)
	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	pl := j.Placement()
	if len(pl) != 2 {
		t.Fatalf("placement entries = %d, want 2", len(pl))
	}
	seen := map[string]bool{}
	for _, loc := range pl[0].Locations {
		seen[loc] = true
	}
	if len(seen) != 3 {
		t.Fatalf("count constraint placed on %d distinct nodes, want 3: %v", len(seen), pl[0].Locations)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConstraintUsesAllNodes(t *testing.T) {
	c := NewCluster(testConfig(), "A", "B", "C", "D")
	defer c.Close()
	spec := &JobSpec{Name: "default"}
	sink := newCollectOp()
	gen := spec.AddOperator(&genOp{count: 10}, PartitionConstraint{})
	col := spec.AddOperator(sink, PartitionConstraint{})
	spec.Connect(gen, col, OneToOne, nil)
	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j.Placement()[0].Locations); got != 4 {
		t.Fatalf("default constraint parallelism = %d, want 4", got)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if sink.total() != 40 {
		t.Fatalf("collected %d, want 40", sink.total())
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	c := NewCluster(testConfig(), "A")
	defer c.Close()
	if _, err := c.AddNode("A"); err == nil {
		t.Fatal("duplicate AddNode succeeded")
	}
	if _, err := c.AddNode("E"); err != nil {
		t.Fatalf("AddNode(E): %v", err)
	}
	if len(c.AllNodes()) != 2 {
		t.Fatalf("AllNodes = %v", c.AllNodes())
	}
}

func TestServicesRegistry(t *testing.T) {
	c := NewCluster(testConfig(), "A")
	defer c.Close()
	n := c.Node("A")
	n.SetService("x", 42)
	if got := n.Service("x"); got != 42 {
		t.Fatalf("Service(x) = %v", got)
	}
	if got := n.Service("missing"); got != nil {
		t.Fatalf("Service(missing) = %v, want nil", got)
	}
}

func TestFrameHelpers(t *testing.T) {
	f := NewFrame(4)
	f.Append([]byte{1, 2})
	f.Append([]byte{3})
	if f.Len() != 2 || f.Bytes() != 3 {
		t.Fatalf("Len/Bytes = %d/%d", f.Len(), f.Bytes())
	}
	cl := f.Clone()
	cl.Records[0][0] = 9
	if f.Records[0][0] != 1 {
		t.Fatal("Clone shares record storage")
	}
	sl := f.Slice(1, 2)
	if sl.Len() != 1 || sl.Records[0][0] != 3 {
		t.Fatalf("Slice = %v", sl.Records)
	}
}

func TestBackPressureDoesNotDeadlock(t *testing.T) {
	// A slow consumer with a tiny queue must not deadlock the producer.
	cfg := testConfig()
	cfg.QueueDepth = 1
	c := NewCluster(cfg, "A")
	defer c.Close()

	slow := &slowSink{delay: 100 * time.Microsecond}
	spec := &JobSpec{Name: "bp"}
	gen := spec.AddOperator(&genOp{count: 200}, CountConstraint(1))
	snk := spec.AddOperator(slow, CountConstraint(1))
	spec.Connect(gen, snk, OneToOne, nil)

	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- j.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("back-pressure deadlock")
	}
	if slow.count.Load() != 200 {
		t.Fatalf("slow sink saw %d records, want 200", slow.count.Load())
	}
}

type slowSink struct {
	delay time.Duration
	count atomic.Int64
}

func (s *slowSink) Name() string { return "slowsink" }

func (s *slowSink) CreateRuntime(ctx *TaskContext, out Writer) (OperatorRuntime, error) {
	return &slowSinkRuntime{op: s, out: out}, nil
}

type slowSinkRuntime struct {
	op  *slowSink
	out Writer
}

func (r *slowSinkRuntime) Open() error { return r.out.Open() }

func (r *slowSinkRuntime) NextFrame(f *Frame) error {
	time.Sleep(r.op.delay)
	r.op.count.Add(int64(f.Len()))
	return r.out.NextFrame(f)
}

func (r *slowSinkRuntime) Close() error   { return r.out.Close() }
func (r *slowSinkRuntime) Fail(err error) { r.out.Fail(err) }

func TestClusterCloseCancelsJobs(t *testing.T) {
	c := NewCluster(testConfig(), "A")
	spec := &JobSpec{Name: "closeme"}
	gen := spec.AddOperator(&infiniteOp{}, CountConstraint(1))
	sink := spec.AddOperator(newCollectOp(), CountConstraint(1))
	spec.Connect(gen, sink, OneToOne, nil)
	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { c.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}
	if j.Status() == JobRunning {
		t.Fatal("job still running after cluster close")
	}
	if _, err := c.StartJob(spec); err == nil {
		t.Fatal("StartJob succeeded on closed cluster")
	}
}

func TestJobStatusStrings(t *testing.T) {
	for st, want := range map[JobStatus]string{
		JobPending: "pending", JobRunning: "running", JobFinished: "finished",
		JobFailed: "failed", JobCanceled: "canceled",
	} {
		if st.String() != want {
			t.Errorf("JobStatus(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func BenchmarkOneToOnePipeline(b *testing.B) {
	c := NewCluster(testConfig(), "A")
	defer c.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := &JobSpec{Name: fmt.Sprintf("bench-%d", i)}
		gen := spec.AddOperator(&genOp{count: 1000}, CountConstraint(1))
		sink := spec.AddOperator(newCollectOp(), CountConstraint(1))
		spec.Connect(gen, sink, OneToOne, nil)
		j, err := c.StartJob(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := j.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScheduleDelayAppliesPerJob(t *testing.T) {
	cfg := testConfig()
	cfg.ScheduleDelay = 30 * time.Millisecond
	c := NewCluster(cfg, "A")
	defer c.Close()
	spec := &JobSpec{Name: "delayed"}
	gen := spec.AddOperator(&genOp{count: 1}, CountConstraint(1))
	sink := spec.AddOperator(newCollectOp(), CountConstraint(1))
	spec.Connect(gen, sink, OneToOne, nil)

	start := time.Now()
	j, err := c.StartJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < cfg.ScheduleDelay {
		t.Fatalf("StartJob returned in %v, want >= %v (simulated planning latency)", elapsed, cfg.ScheduleDelay)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeJoinEventFires(t *testing.T) {
	c := NewCluster(testConfig(), "A")
	defer c.Close()
	joined := make(chan string, 1)
	cancel := c.SubscribeCluster(func(ev ClusterEvent) {
		if ev.Kind == NodeJoined {
			joined <- ev.NodeID
		}
	})
	defer cancel()
	if _, err := c.AddNode("B"); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-joined:
		if id != "B" {
			t.Fatalf("joined node = %q", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no NodeJoined event")
	}
}

// TestInFlightFrameBytesLedger asserts the per-node in-flight frame-byte
// account — the execution layer's contribution to the ingestion governor's
// memory picture — returns to zero once a job completes, both on the normal
// path (every frame dequeued by its consumer) and on the cancel path (the
// job-completion drain credits back frames a canceled task left queued).
func TestInFlightFrameBytesLedger(t *testing.T) {
	t.Run("completed", func(t *testing.T) {
		c := NewCluster(testConfig(), "A", "B")
		defer c.Close()
		col := newCollectOp()
		spec := &JobSpec{Name: "inflight-done"}
		gen := spec.AddOperator(&genOp{count: 200}, LocationConstraint("A", "B"))
		snk := spec.AddOperator(col, LocationConstraint("A", "B"))
		spec.Connect(gen, snk, OneToOne, nil)
		j, err := c.StartJob(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
		for _, n := range []string{"A", "B"} {
			if got := c.Node(n).InFlightFrameBytes(); got != 0 {
				t.Fatalf("node %s in-flight bytes = %d after completion, want 0", n, got)
			}
		}
	})
	t.Run("canceled", func(t *testing.T) {
		c := NewCluster(testConfig(), "A")
		defer c.Close()
		spec := &JobSpec{Name: "inflight-cancel"}
		gen := spec.AddOperator(&infiniteOp{}, CountConstraint(1))
		snk := spec.AddOperator(&slowSink{delay: 200 * time.Microsecond}, CountConstraint(1))
		spec.Connect(gen, snk, OneToOne, nil)
		j, err := c.StartJob(spec)
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) // let frames pile up in the queue
		j.Cancel()
		if err := j.Wait(); !errors.Is(err, ErrJobCanceled) {
			t.Fatalf("Wait after cancel = %v, want ErrJobCanceled", err)
		}
		if got := c.Node("A").InFlightFrameBytes(); got != 0 {
			t.Fatalf("in-flight bytes = %d after cancel drain, want 0", got)
		}
	})
}
