package hyracks

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors reported by job execution.
var (
	// ErrJobCanceled is returned by Wait when the job was canceled.
	ErrJobCanceled = errors.New("hyracks: job canceled")
	// ErrNodeFailure is wrapped into task errors when a hosting node dies
	// mid-job. Plain Hyracks jobs carry non-resumable semantics (§6.2);
	// resilience is layered on top by the feed runtime.
	ErrNodeFailure = errors.New("hyracks: node failure")
)

// TaskPlacement records where one operator's tasks were scheduled.
type TaskPlacement struct {
	Op        OperatorID
	Name      string
	Locations []string // node per partition
}

// JobHandle tracks one running job.
type JobHandle struct {
	id      JobID
	name    string
	cluster *Cluster

	canceled  chan struct{}
	cancelOne sync.Once

	doneWG sync.WaitGroup
	done   chan struct{}

	mu        sync.Mutex
	status    JobStatus
	err       error
	placement []TaskPlacement
}

// ID returns the job's id.
func (j *JobHandle) ID() JobID { return j.id }

// Name returns the job's label.
func (j *JobHandle) Name() string { return j.name }

// Status reports the job's current lifecycle state.
func (j *JobHandle) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Placement reports where each operator's tasks were scheduled.
func (j *JobHandle) Placement() []TaskPlacement {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]TaskPlacement(nil), j.placement...)
}

// Cancel requests termination of the job's tasks. Safe to call repeatedly.
func (j *JobHandle) Cancel() {
	j.cancelOne.Do(func() { close(j.canceled) })
}

// Canceled returns a channel closed once the job has been canceled.
func (j *JobHandle) Canceled() <-chan struct{} { return j.canceled }

// Done returns a channel closed when all tasks have terminated.
func (j *JobHandle) Done() <-chan struct{} { return j.done }

// Wait blocks until the job terminates and returns nil for graceful
// completion, ErrJobCanceled for cancellation, or the first task error.
func (j *JobHandle) Wait() error {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *JobHandle) fail(err error) {
	j.mu.Lock()
	if j.err == nil && err != nil {
		j.err = err
	}
	j.mu.Unlock()
	j.Cancel()
}

// inQueue is a consumer task's input: a bounded frame channel closed when
// every producer feeding it has released it.
type inQueue struct {
	ch        chan *Frame
	node      *NodeController
	producers int
	mu        sync.Mutex
	closed    bool
}

func (q *inQueue) release() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.producers--
	if q.producers <= 0 {
		q.closed = true
		close(q.ch)
	}
}

// send delivers a frame, blocking for back-pressure. Frames destined to a
// dead node are dropped; a canceled job aborts the send with an error.
// Enqueued frame bytes are charged to the receiving node's in-flight
// account (credited back at dequeue, or when the job's queues are drained
// at completion); dropped and aborted frames are never charged.
func (q *inQueue) send(f *Frame, canceled <-chan struct{}) error {
	select {
	case q.ch <- f:
		q.node.addInFlight(int64(f.Bytes()))
		return nil
	case <-q.node.dead:
		return nil // drop: receiver is gone
	case <-canceled:
		return ErrJobCanceled
	default:
	}
	// Slow path: block until one of the above unblocks.
	select {
	case q.ch <- f:
		q.node.addInFlight(int64(f.Bytes()))
		return nil
	case <-q.node.dead:
		return nil
	case <-canceled:
		return ErrJobCanceled
	}
}

// router implements Writer for a producer partition, routing frames to
// consumer queues per the connector strategy.
type router struct {
	strategy ConnectorStrategy
	keyHash  func([]byte) uint64
	queues   []*inQueue
	self     int // producer partition, used by OneToOne
	rr       int // round-robin cursor
	canceled <-chan struct{}
	once     sync.Once
}

// Open implements Writer.
func (r *router) Open() error { return nil }

// NextFrame implements Writer.
func (r *router) NextFrame(f *Frame) error {
	switch r.strategy {
	case OneToOne:
		return r.queues[r.self].send(f, r.canceled)
	case MToNRandomPartition:
		q := r.queues[r.rr%len(r.queues)]
		r.rr++
		return q.send(f, r.canceled)
	case MToNReplicate:
		for i, q := range r.queues {
			out := f
			if i > 0 {
				out = f.Clone()
			}
			if err := q.send(out, r.canceled); err != nil {
				return err
			}
		}
		return nil
	case MToNHashPartition:
		n := len(r.queues)
		if n == 1 {
			return r.queues[0].send(f, r.canceled)
		}
		buckets := make([][][]byte, n)
		for _, rec := range f.Records {
			i := int(r.keyHash(rec) % uint64(n))
			buckets[i] = append(buckets[i], rec)
		}
		for i, b := range buckets {
			if len(b) == 0 {
				continue
			}
			if err := r.queues[i].send(&Frame{Records: b}, r.canceled); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("hyracks: unknown connector strategy %d", r.strategy)
}

// Close implements Writer: releases every consumer queue exactly once.
func (r *router) Close() error {
	r.once.Do(func() {
		for _, q := range r.queues {
			q.release()
		}
	})
	return nil
}

// Fail implements Writer. Queue closure still happens via Close, which the
// framework invokes when the task unwinds.
func (r *router) Fail(error) { _ = r.Close() }

// multiWriter fans a producer's output to several routers (one per outbound
// connector).
type multiWriter struct {
	outs []Writer
}

// Open implements Writer.
func (m *multiWriter) Open() error {
	for _, o := range m.outs {
		if err := o.Open(); err != nil {
			return err
		}
	}
	return nil
}

// NextFrame implements Writer.
func (m *multiWriter) NextFrame(f *Frame) error {
	for i, o := range m.outs {
		out := f
		if i > 0 {
			out = f.Clone()
		}
		if err := o.NextFrame(out); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Writer.
func (m *multiWriter) Close() error {
	var first error
	for _, o := range m.outs {
		if err := o.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Fail implements Writer.
func (m *multiWriter) Fail(err error) {
	for _, o := range m.outs {
		o.Fail(err)
	}
}

// StartJob validates, schedules, and launches a job's tasks, returning a
// handle immediately. Task errors fail the job and cancel its other tasks.
func (c *Cluster) StartJob(spec *JobSpec) (*JobHandle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("hyracks: cluster closed")
	}
	c.mu.Unlock()

	// Simulated job planning/dispatch latency (see Config.ScheduleDelay).
	if c.cfg.ScheduleDelay > 0 {
		time.Sleep(c.cfg.ScheduleDelay)
	}

	j := &JobHandle{
		id:       nextJobID(),
		name:     spec.Name,
		cluster:  c,
		canceled: make(chan struct{}),
		done:     make(chan struct{}),
		status:   JobPending,
	}

	// Resolve per-operator placement.
	alive := c.AliveNodes()
	if len(alive) == 0 {
		return nil, fmt.Errorf("hyracks: no live nodes")
	}
	locations := make([][]string, len(spec.ops))
	for i, op := range spec.ops {
		pc := op.constraint
		switch {
		case len(pc.Locations) > 0:
			for _, loc := range pc.Locations {
				n := c.Node(loc)
				if n == nil || !n.Alive() {
					return nil, fmt.Errorf("hyracks: job %q: operator %s pinned to unavailable node %q",
						spec.Name, op.desc.Name(), loc)
				}
			}
			locations[i] = append([]string(nil), pc.Locations...)
		case pc.Count > 0:
			locs := make([]string, pc.Count)
			for p := 0; p < pc.Count; p++ {
				locs[p] = alive[p%len(alive)]
			}
			locations[i] = locs
		default:
			locations[i] = append([]string(nil), alive...)
		}
		j.placement = append(j.placement, TaskPlacement{
			Op: OperatorID(i), Name: op.desc.Name(), Locations: locations[i],
		})
	}

	// Build consumer input queues: one per partition of each operator
	// with an inbound connector.
	inQueues := make(map[OperatorID][]*inQueue)
	producersOf := make(map[OperatorID]int)
	for _, conn := range spec.conn {
		producersOf[conn.To.Op] += len(locations[conn.From.Op])
	}
	for opID, nProd := range producersOf {
		locs := locations[opID]
		qs := make([]*inQueue, len(locs))
		for p, loc := range locs {
			qs[p] = &inQueue{
				ch:        make(chan *Frame, c.cfg.QueueDepth),
				node:      c.Node(loc),
				producers: nProd,
			}
		}
		inQueues[opID] = qs
	}

	// Build per-task output writers.
	outbound := make(map[OperatorID][]Connector)
	for _, conn := range spec.conn {
		outbound[conn.From.Op] = append(outbound[conn.From.Op], conn)
	}

	type task struct {
		opID    OperatorID
		part    int
		node    *NodeController
		out     Writer
		routers []*router
		in      *inQueue
	}
	var tasks []*task
	for opID := range spec.ops {
		id := OperatorID(opID)
		for p, loc := range locations[opID] {
			node := c.Node(loc)
			tk := &task{opID: id, part: p, node: node}
			conns := outbound[id]
			var outs []Writer
			for _, conn := range conns {
				rt := &router{
					strategy: conn.Strategy,
					keyHash:  conn.KeyHash,
					queues:   inQueues[conn.To.Op],
					self:     p,
					canceled: j.canceled,
				}
				if conn.Strategy == OneToOne && len(rt.queues) != len(locations[opID]) {
					return nil, fmt.Errorf("hyracks: job %q: OneToOne connector between operators of unequal parallelism", spec.Name)
				}
				tk.routers = append(tk.routers, rt)
				outs = append(outs, rt)
			}
			switch len(outs) {
			case 0:
				tk.out = NopWriter{}
			case 1:
				tk.out = outs[0]
			default:
				tk.out = &multiWriter{outs: outs}
			}
			if qs, ok := inQueues[id]; ok {
				tk.in = qs[p]
			}
			tasks = append(tasks, tk)
		}
	}

	// Instantiate runtimes.
	type runnable struct {
		*task
		rt         OperatorRuntime
		cancel     chan struct{}
		cancelOnce sync.Once
	}
	closeCancel := func(r *runnable) {
		r.cancelOnce.Do(func() { close(r.cancel) })
	}
	var runnables []*runnable
	for _, tk := range tasks {
		taskCancel := make(chan struct{})
		ctx := &TaskContext{
			JobID:         j.id,
			NodeID:        tk.node.ID(),
			Partition:     tk.part,
			NumPartitions: len(locations[tk.opID]),
			Node:          tk.node,
			Canceled:      taskCancel,
		}
		rt, err := spec.ops[tk.opID].desc.CreateRuntime(ctx, tk.out)
		if err != nil {
			j.fail(err)
			// Release all queues the already-built routers feed so that
			// nothing deadlocks, then report.
			for _, r := range runnables {
				for _, rt := range r.routers {
					_ = rt.Close()
				}
				closeCancel(r)
			}
			for _, r := range tk.routers {
				_ = r.Close()
			}
			return nil, fmt.Errorf("hyracks: job %q: creating %s[%d]: %w",
				spec.Name, spec.ops[tk.opID].desc.Name(), tk.part, err)
		}
		runnables = append(runnables, &runnable{task: tk, rt: rt, cancel: taskCancel})
	}

	c.mu.Lock()
	c.jobs[j.id] = j
	c.mu.Unlock()

	j.mu.Lock()
	j.status = JobRunning
	j.mu.Unlock()
	c.emitJobEvent(JobEvent{Kind: EventJobStarted, JobID: j.id, Name: j.name})

	for _, r := range runnables {
		r := r
		j.doneWG.Add(1)
		// Per-task cancellation: fires on job cancel or node death.
		go func() {
			select {
			case <-j.canceled:
			case <-r.node.dead:
			case <-r.cancel:
				return
			}
			closeCancel(r)
		}()
		go func() {
			defer j.doneWG.Done()
			defer func() {
				for _, rt := range r.routers {
					_ = rt.Close()
				}
				closeCancel(r)
			}()
			err := c.runTask(j, r.rt, r.in, r.node, r.cancel, spec.ops[r.opID].desc.Name())
			if err != nil && !errors.Is(err, ErrJobCanceled) {
				j.fail(fmt.Errorf("%s[%d] on %s: %w",
					spec.ops[r.opID].desc.Name(), r.part, r.node.ID(), err))
			}
		}()
	}

	go func() {
		j.doneWG.Wait()
		// Every producer has released every queue by now (router Close runs
		// in the task defers), so the channels are closed; drain whatever a
		// canceled or failed task left queued and credit the bytes back to
		// the in-flight accounts.
		for _, qs := range inQueues {
			for _, q := range qs {
				for f := range q.ch {
					q.node.addInFlight(-int64(f.Bytes()))
				}
			}
		}
		j.mu.Lock()
		switch {
		case j.err != nil:
			j.status = JobFailed
		case isClosed(j.canceled):
			j.status = JobCanceled
			j.err = ErrJobCanceled
		default:
			j.status = JobFinished
		}
		err := j.err
		st := j.status
		j.mu.Unlock()

		c.mu.Lock()
		delete(c.jobs, j.id)
		c.mu.Unlock()

		close(j.done)
		switch st {
		case JobFinished:
			c.emitJobEvent(JobEvent{Kind: EventJobCompleted, JobID: j.id, Name: j.name})
		default:
			c.emitJobEvent(JobEvent{Kind: EventJobFailed, JobID: j.id, Name: j.name, Err: err})
		}
	}()

	return j, nil
}

func isClosed(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// runTask drives one operator task to completion.
func (c *Cluster) runTask(j *JobHandle, rt OperatorRuntime, in *inQueue, node *NodeController, cancel chan struct{}, opName string) error {
	if src, ok := rt.(SourceRuntime); ok && in == nil {
		if err := rt.Open(); err != nil {
			return err
		}
		return src.Run()
	}
	if in == nil {
		return fmt.Errorf("hyracks: non-source operator %T has no input", rt)
	}
	if err := rt.Open(); err != nil {
		return err
	}
	for {
		select {
		case f, ok := <-in.ch:
			if !ok {
				return rt.Close()
			}
			node.addInFlight(-int64(f.Bytes()))
			if ob := c.cfg.FrameObserver; ob != nil {
				ob(node.ID(), opName, f)
			}
			if ff := c.cfg.FrameFault; ff != nil {
				ff(node.ID(), opName, f)
				// The hook may have killed this node: recheck liveness so
				// the injected death lands exactly on the frame boundary,
				// before the operator sees the frame.
				if isClosed(node.dead) {
					return fmt.Errorf("%w: %s", ErrNodeFailure, node.ID())
				}
			}
			if err := rt.NextFrame(f); err != nil {
				rt.Fail(err)
				return err
			}
		case <-node.dead:
			return fmt.Errorf("%w: %s", ErrNodeFailure, node.ID())
		case <-cancel:
			return ErrJobCanceled
		}
	}
}
