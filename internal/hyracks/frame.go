package hyracks

import "sync"

// Frame is the unit of data exchange between operator tasks: a batch of
// serialized ADM records. Frames are never mutated after being handed to a
// Writer; operators that need to modify records build new frames.
type Frame struct {
	// Records holds one serialized record per entry.
	Records [][]byte
}

// NewFrame returns a frame pre-sized for n records.
func NewFrame(n int) *Frame {
	return &Frame{Records: make([][]byte, 0, n)}
}

// framePool recycles Frame headers (the Records slice), not the record byte
// slices themselves — records routinely outlive their frame (the storage
// memtable retains them), so only the header is safe to reuse.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// GetFrame returns an empty pooled frame with capacity for at least n
// records. Pair with PutFrame when this task is the frame's sole owner at
// end of life.
func GetFrame(n int) *Frame {
	f := framePool.Get().(*Frame)
	if cap(f.Records) < n {
		f.Records = make([][]byte, 0, n)
	}
	return f
}

// PutFrame recycles a frame header. Ownership rule: only the frame's sole
// owner may recycle it — never after handing it to a consumer that may
// retain it (an enqueueing Writer, a Joint.Deposit that reported the frame
// retained). The contained record byte slices are released, not recycled.
func PutFrame(f *Frame) {
	if f == nil {
		return
	}
	f.Reset()
	framePool.Put(f)
}

// Reset empties the frame for reuse, dropping record references while
// keeping the slice's capacity.
func (f *Frame) Reset() {
	for i := range f.Records {
		f.Records[i] = nil
	}
	f.Records = f.Records[:0]
}

// Append adds a serialized record to the frame.
func (f *Frame) Append(rec []byte) { f.Records = append(f.Records, rec) }

// Len reports the number of records in the frame.
func (f *Frame) Len() int { return len(f.Records) }

// Bytes reports the total payload size of the frame in bytes.
func (f *Frame) Bytes() int {
	n := 0
	for _, r := range f.Records {
		n += len(r)
	}
	return n
}

// Slice returns a new frame over records [lo, hi) of f. The record byte
// slices are shared, not copied.
func (f *Frame) Slice(lo, hi int) *Frame {
	return &Frame{Records: f.Records[lo:hi]}
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := NewFrame(f.Len())
	for _, r := range f.Records {
		cp := make([]byte, len(r))
		copy(cp, r)
		out.Append(cp)
	}
	return out
}

// Writer is the push-based dataflow interface between operator tasks,
// mirroring Hyracks' IFrameWriter. A producer calls Open once, NextFrame any
// number of times, and then exactly one of Close (graceful end of stream) or
// Fail (abnormal termination).
type Writer interface {
	// Open prepares the writer to receive frames.
	Open() error
	// NextFrame delivers one frame downstream. It may block to exert
	// back-pressure.
	NextFrame(f *Frame) error
	// Close signals a graceful end of the stream.
	Close() error
	// Fail signals abnormal termination of the stream.
	Fail(err error)
}

// NopWriter is a Writer that discards everything; Hyracks' NullSink operator
// wraps it.
type NopWriter struct{}

// Open implements Writer.
func (NopWriter) Open() error { return nil }

// NextFrame implements Writer.
func (NopWriter) NextFrame(*Frame) error { return nil }

// Close implements Writer.
func (NopWriter) Close() error { return nil }

// Fail implements Writer.
func (NopWriter) Fail(error) {}

// FuncWriter adapts a function to the Writer interface; open/close/fail are
// no-ops. Useful in tests and leaf sinks.
type FuncWriter func(*Frame) error

// Open implements Writer.
func (FuncWriter) Open() error { return nil }

// NextFrame implements Writer.
func (fw FuncWriter) NextFrame(f *Frame) error { return fw(f) }

// Close implements Writer.
func (FuncWriter) Close() error { return nil }

// Fail implements Writer.
func (FuncWriter) Fail(error) {}
