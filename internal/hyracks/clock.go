package hyracks

import "time"

// nowFunc is the simulated cluster's canonical clock indirection point.
// The simclock analyzer (cmd/feedlint) forbids direct time.Now() calls in
// this package; heartbeat stamping and failure detection read the clock
// through the cluster's now() so deterministic runs can pin it.
var nowFunc = time.Now

// now reads the cluster clock: the Config.Clock override when set, the
// real clock otherwise.
func (c *Cluster) now() time.Time {
	if c.cfg.Clock != nil {
		return c.cfg.Clock()
	}
	return nowFunc()
}
