package hyracks

import (
	"fmt"
	"sync/atomic"
)

// OperatorID identifies an operator within a job specification.
type OperatorID int

// JobID identifies a submitted job within a cluster.
type JobID int64

var jobIDCounter atomic.Int64

func nextJobID() JobID { return JobID(jobIDCounter.Add(1)) }

// PartitionConstraint restricts where and how widely an operator's tasks run,
// mirroring Hyracks' count and (absolute) location constraints.
type PartitionConstraint struct {
	// Locations pins task i to node Locations[i]. When set, Count is
	// ignored and the task count equals len(Locations).
	Locations []string
	// Count requests that many tasks placed on distinct live nodes chosen
	// by the cluster controller. Zero means one task per live node.
	Count int
}

// CountConstraint returns a constraint for n tasks on controller-chosen nodes.
func CountConstraint(n int) PartitionConstraint { return PartitionConstraint{Count: n} }

// LocationConstraint returns a constraint pinning tasks to the given nodes.
func LocationConstraint(nodes ...string) PartitionConstraint {
	return PartitionConstraint{Locations: nodes}
}

// TaskContext carries per-task environment to operator runtimes.
type TaskContext struct {
	// JobID identifies the running job.
	JobID JobID
	// NodeID names the node this task runs on.
	NodeID string
	// Partition is this task's index in [0, NumPartitions).
	Partition int
	// NumPartitions is the operator's degree of parallelism.
	NumPartitions int
	// Node exposes node-local services (storage manager, feed manager).
	Node *NodeController
	// Canceled is closed when the job is canceled or the node dies; long
	// running source operators must select on it.
	Canceled <-chan struct{}
}

// Service returns the named node-local service, or nil.
func (c *TaskContext) Service(name string) any { return c.Node.Service(name) }

// OperatorDescriptor describes an operator: a partitioned-parallel
// computation step. At activation the descriptor creates one runtime per
// partition.
type OperatorDescriptor interface {
	// Name returns a human-readable operator name for logs and tests.
	Name() string
	// CreateRuntime instantiates this operator's runtime for one
	// partition. The runtime receives input frames via its Writer
	// methods; output must be forwarded to out.
	CreateRuntime(ctx *TaskContext, out Writer) (OperatorRuntime, error)
}

// OperatorRuntime is one task: the per-partition instantiation of an
// operator. Inner and sink operators consume input through the embedded
// Writer interface. Source operators (no inbound connector) additionally
// implement SourceRuntime.
type OperatorRuntime interface {
	Writer
}

// SourceRuntime is implemented by runtimes of source operators, which
// generate data instead of consuming it. Run must return when ctx.Canceled
// is closed, after calling Close (or Fail) on its output writer.
type SourceRuntime interface {
	OperatorRuntime
	// Run drives the source until end of data or cancellation.
	Run() error
}

// ConnectorStrategy determines how producer partitions route records to
// consumer partitions.
type ConnectorStrategy int

// Connector strategies, mirroring the connectors used by the paper's
// ingestion pipelines (§5.2).
const (
	// OneToOne connects producer partition i to consumer partition i.
	// Producer and consumer must have equal partition counts and
	// co-located tasks.
	OneToOne ConnectorStrategy = iota
	// MToNHashPartition routes each record to the consumer partition
	// selected by hashing the record's key (via the connector's KeyHash).
	MToNHashPartition
	// MToNRandomPartition routes records round-robin across consumer
	// partitions.
	MToNRandomPartition
	// MToNReplicate delivers every frame to every consumer partition.
	MToNReplicate
)

// Connector joins a producer operator to a consumer operator.
type Connector struct {
	// From and To are operator ids within the same JobSpec.
	From, To ConnPort
	// Strategy selects the routing policy.
	Strategy ConnectorStrategy
	// KeyHash extracts the partitioning hash from a serialized record;
	// required for MToNHashPartition.
	KeyHash func(rec []byte) uint64
}

// ConnPort names an operator endpoint of a connector.
type ConnPort struct {
	Op OperatorID
}

// JobSpec is a dataflow DAG of operators and connectors.
type JobSpec struct {
	// Name is a human-readable job label.
	Name string
	ops  []specOp
	conn []Connector
}

type specOp struct {
	desc       OperatorDescriptor
	constraint PartitionConstraint
}

// AddOperator adds an operator with its partition constraint and returns its
// id.
func (s *JobSpec) AddOperator(desc OperatorDescriptor, pc PartitionConstraint) OperatorID {
	s.ops = append(s.ops, specOp{desc: desc, constraint: pc})
	return OperatorID(len(s.ops) - 1)
}

// Connect joins producer from to consumer to using the given strategy.
func (s *JobSpec) Connect(from, to OperatorID, strategy ConnectorStrategy, keyHash func([]byte) uint64) {
	s.conn = append(s.conn, Connector{
		From:     ConnPort{Op: from},
		To:       ConnPort{Op: to},
		Strategy: strategy,
		KeyHash:  keyHash,
	})
}

// Validate checks structural well-formedness of the spec.
func (s *JobSpec) Validate() error {
	if len(s.ops) == 0 {
		return fmt.Errorf("hyracks: job %q has no operators", s.Name)
	}
	inbound := make(map[OperatorID]int)
	for _, c := range s.conn {
		if int(c.From.Op) >= len(s.ops) || int(c.To.Op) >= len(s.ops) {
			return fmt.Errorf("hyracks: job %q connector references unknown operator", s.Name)
		}
		if c.From.Op == c.To.Op {
			return fmt.Errorf("hyracks: job %q has a self-loop on operator %d", s.Name, c.From.Op)
		}
		if c.Strategy == MToNHashPartition && c.KeyHash == nil {
			return fmt.Errorf("hyracks: job %q hash connector without KeyHash", s.Name)
		}
		inbound[c.To.Op]++
	}
	for to, n := range inbound {
		if n > 1 {
			return fmt.Errorf("hyracks: job %q operator %d has %d inbound connectors; at most 1 supported", s.Name, to, n)
		}
	}
	return nil
}

// NumOperators reports the number of operators in the spec.
func (s *JobSpec) NumOperators() int { return len(s.ops) }

// Operator returns the i-th operator descriptor.
func (s *JobSpec) Operator(id OperatorID) OperatorDescriptor { return s.ops[id].desc }

// JobStatus is the lifecycle state of a job.
type JobStatus int

// Job lifecycle states.
const (
	JobPending JobStatus = iota
	JobRunning
	JobFinished
	JobFailed
	JobCanceled
)

// String implements fmt.Stringer.
func (s JobStatus) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobFinished:
		return "finished"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}
