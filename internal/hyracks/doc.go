// Package hyracks implements a partitioned-parallel dataflow execution
// engine modeled on Hyracks, the runtime layer of AsterixDB.
//
// A Hyracks cluster has one Cluster Controller and a set of Node Controllers
// that heartbeat their liveness. Clients submit jobs: DAGs of operator
// descriptors joined by connector descriptors. At activation every operator
// is cloned into one task per partition, subject to its count or location
// constraints, and frames of serialized records flow between tasks through
// bounded queues, which exert natural back-pressure.
//
// The cluster in this repository is simulated in-process: every node is an
// isolated set of goroutines and queues, and hard failures are injected by
// killing a node, which halts its tasks, drops its queues, and stops its
// heartbeats — exercising the same detection and recovery paths a physical
// deployment would.
package hyracks
