#!/bin/sh
# ci.sh — tier-1 verification in one command: build, vet, feedlint, tests.
# Usage: ./ci.sh [-race]  (-race appends the race-detector tier)
set -eu

go build ./...
echo "build: ok"

go vet ./...
echo "vet: ok"

go run ./cmd/feedlint ./...
echo "feedlint: ok"

# The background flush/compaction pipeline was specifically built so the LSM
# needs no lockorder waivers: no disk I/O happens under the tree lock. Keep
# it that way — new suppressions in internal/lsm are a design regression,
# not a lint inconvenience.
if grep -rn "feedlint:allow lockorder" internal/lsm/ >/dev/null 2>&1; then
	echo "lockorder suppressions found in internal/lsm:" >&2
	grep -rn "feedlint:allow lockorder" internal/lsm/ >&2
	exit 1
fi
echo "lsm lockorder suppressions: none"

go test ./...
echo "test: ok"

# Replay the checked-in fuzz corpora (testdata/fuzz seeds run as ordinary
# tests) for the two codecs with wire formats: ADM records and LSM run
# blocks. Keeps past crashers fixed without needing a fuzzing budget.
go test -run Fuzz -count=1 ./internal/adm/ ./internal/lsm/
echo "fuzz corpus replay: ok"

make bench-smoke
echo "bench-smoke: ok"

make watch-smoke
echo "watch-smoke: ok"

go run ./cmd/feedchaos -seeds 50 -records 150
echo "chaos-smoke: ok"

go run ./cmd/feedchaos -restart -seeds 50 -records 150
echo "chaos-restart-smoke: ok"

make chaos-overload-smoke
echo "chaos-overload-smoke: ok"

if [ "${1:-}" = "-race" ]; then
	go test -race -short ./internal/core/... ./internal/hyracks/... ./internal/lsm/... ./internal/governor/...
	# End-to-end replication and restart tests: the promotion/resync and
	# recovery paths are the most concurrency-sensitive in the stack.
	go test -race -short -run '(?i)replicat|Restart|FeedMaintains' .
	# The governor's load-shedding path under the race detector: the full
	# 50-seed overload sweep (the acceptance bar for the governor).
	go run -race ./cmd/feedchaos -overload -seeds 50 -records 120
	echo "race: ok"
fi
