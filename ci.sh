#!/bin/sh
# ci.sh — tier-1 verification in one command: build, vet, feedlint, tests.
# Usage: ./ci.sh [-race]  (-race appends the race-detector tier)
set -eu

go build ./...
echo "build: ok"

go vet ./...
echo "vet: ok"

go run ./cmd/feedlint ./...
echo "feedlint: ok"

go test ./...
echo "test: ok"

go test -run '^$' -bench=InsertPath -benchtime=1x ./internal/storage/
echo "bench-smoke: ok"

if [ "${1:-}" = "-race" ]; then
	go test -race -short ./internal/core/... ./internal/hyracks/... ./internal/lsm/...
	echo "race: ok"
fi
