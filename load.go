package asterixfeeds

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"asterixfeeds/internal/adm"
)

// LoadDataset bulk-loads newline-delimited ADM/JSON records from a file
// into the named dataset (active dataverse) through a single insert job —
// the `load dataset` operation the paper's experiments use to pre-populate
// targets (§5.7.1). Malformed lines are rejected (bulk load is strict,
// unlike feed ingestion's soft-failure handling).
func (in *Instance) LoadDataset(dataset, path string) (int, error) {
	ds, ok := in.catalog.Dataset(in.Dataverse(), dataset)
	if !ok {
		return 0, fmt.Errorf("asterixfeeds: unknown dataset %s", dataset)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("asterixfeeds: load dataset: %w", err)
	}
	defer f.Close()

	var recs []*adm.Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		v, err := adm.Parse(text)
		if err != nil {
			return 0, fmt.Errorf("asterixfeeds: load dataset: line %d: %w", line, err)
		}
		rec, ok := v.(*adm.Record)
		if !ok {
			return 0, fmt.Errorf("asterixfeeds: load dataset: line %d: value is %s, want record", line, v.Tag())
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if err := in.runInsertJob(ds, recs); err != nil {
		return 0, err
	}
	return len(recs), nil
}
