GO ?= go

.PHONY: build test race lint vet fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tier: the concurrency-heavy packages under the race detector.
# -short keeps it fast enough to run on every change.
race:
	$(GO) test -race -short ./internal/core/... ./internal/hyracks/... ./internal/lsm/...

# feedlint enforces the architecture invariants in DESIGN.md.
lint:
	$(GO) run ./cmd/feedlint ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Tier-1 verification in one command.
ci:
	./ci.sh
