GO ?= go

.PHONY: build test race lint vet fmt bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tier: the concurrency-heavy packages under the race detector.
# -short keeps it fast enough to run on every change.
race:
	$(GO) test -race -short ./internal/core/... ./internal/hyracks/... ./internal/lsm/...

# feedlint enforces the architecture invariants in DESIGN.md.
lint:
	$(GO) run ./cmd/feedlint ./...

vet:
	$(GO) vet ./...

# One-iteration smoke run of the write-path benchmark: proves both insert
# paths still execute end to end without paying for a full measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench=InsertPath -benchtime=1x ./internal/storage/

fmt:
	gofmt -l .

# Tier-1 verification in one command.
ci:
	./ci.sh
