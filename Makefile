GO ?= go

.PHONY: build test race lint lint-fast vet fmt bench-smoke watch-smoke chaos-smoke chaos-restart-smoke chaos-overload-smoke chaos ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tier: the concurrency-heavy packages under the race detector.
# -short keeps it fast enough to run on every change.
race:
	$(GO) test -race -short ./internal/core/... ./internal/hyracks/... ./internal/lsm/... ./internal/governor/...

# feedlint enforces the architecture invariants in DESIGN.md.
lint:
	$(GO) run ./cmd/feedlint ./...

# Same checks, faster loads: -faststd type-checks against the compiler's
# exported package data instead of re-checking stdlib sources, and -v
# prints where the time went. Use during edit-lint loops.
lint-fast:
	$(GO) run ./cmd/feedlint -faststd -v ./...

vet:
	$(GO) vet ./...

# One-iteration smoke run of the write- and read-path benchmarks: proves the
# insert paths and the block-cache read path still execute end to end without
# paying for a full measurement. ReadPath also asserts its acceptance bounds
# (hot gets issue zero disk reads; scans read each block once) even at 1x.
bench-smoke:
	$(GO) test -run '^$$' -bench=InsertPath -benchtime=1x ./internal/storage/
	$(GO) test -run '^$$' -bench=FlushConcurrency -benchtime=1000x ./internal/lsm/
	$(GO) test -run '^$$' -bench=ReadPath -benchtime=1x ./internal/lsm/
	$(GO) test -run '^$$' -bench=Restart -benchtime=1x ./internal/lsm/
	$(GO) test -run '^$$' -bench=Overload -benchtime=1x .

# Observability smoke: the admin endpoints (/feeds, /metrics, pprof) and
# the `show feeds` verb against a live socket feed, plus the per-policy
# SubscriptionStats ledger invariant. Proves the feedwatch surface stays
# coherent with the metrics registry it reads from.
watch-smoke:
	$(GO) test -count=1 -run 'TestAdminEndpointsDuringLiveFeed|TestMetricsDocMatchesRegistry' .
	$(GO) test -count=1 -run 'TestSubscriptionStats|TestSubscriptionSpillError' ./internal/core/

# Chaos smoke: a 50-seed fault-injection sweep with the deterministic
# harness (internal/chaos). Every seed generates a fault schedule; the
# invariant checkers (at-least-once, index consistency, replica
# convergence, WAL replay idempotence) must hold under all of them.
# Failures print a `feedchaos -seed N -replay '...'` repro line.
chaos-smoke:
	$(GO) run ./cmd/feedchaos -seeds 50 -records 150

# Restart chaos: the same 50-seed sweep with a restart-under-fault phase —
# recovery itself is crashed (torn manifest snapshots, mid-replay faults)
# and a second clean restart must still recover exactly.
chaos-restart-smoke:
	$(GO) run ./cmd/feedchaos -restart -seeds 50 -records 150

# Overload chaos: a 50-seed governor sweep — a seeded low-priority flood
# offering several node-memory-budgets' worth of data races a high-priority
# at-least-once feed. Invariants: governor-tracked bytes stay bounded, the
# high-priority feed loses nothing, and the flood's shed ledger balances
# exactly (stored + shed + discarded == emitted).
chaos-overload-smoke:
	$(GO) run ./cmd/feedchaos -overload -seeds 50 -records 120

# Full chaos sweep: more seeds, full-size workloads. Not part of tier-1;
# run before cutting a release or after touching recovery/replay code.
chaos:
	$(GO) run ./cmd/feedchaos -seeds 500 -records 300

fmt:
	gofmt -l .

# Tier-1 verification in one command.
ci:
	./ci.sh
