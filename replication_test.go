package asterixfeeds

import (
	"testing"
	"time"

	"asterixfeeds/internal/adm"
	"asterixfeeds/internal/core"
)

// TestReplicatedDatasetSurvivesStoreNodeLoss exercises the §9.2.2 extension:
// with `with replication`, the loss of a store node promotes the in-sync
// replica instead of terminating the feed, and (with at-least-once) no
// records are lost.
func TestReplicatedDatasetSurvivesStoreNodeLoss(t *testing.T) {
	inst := startTest(t, "A", "B", "C")
	inst.MustExec(`use dataverse feeds;
		create type Tweet as open { id: string, message_text: string };
		create dataset Tweets(Tweet) primary key id with replication;`)
	ds, _ := inst.Catalog().Dataset("feeds", "Tweets")
	if !ds.Replicated {
		t.Fatal("with replication clause not honored")
	}
	// Store partitions on A and B; replicas cross-hosted (0 on B, 1 on A).
	ds.NodeGroup = []string{"A", "B"}

	const total = 4000
	inst.MustExec(`use dataverse feeds;
		create feed F using tweetgen_adaptor ("rate"="4000", "count"="4000", "seed"="31");
		connect feed F to dataset Tweets using policy AtLeastOnce;`)
	conn, _ := inst.Feeds().Connection("feeds", "F", "Tweets")

	// Let roughly half the stream land, then kill store node B.
	waitCount(t, inst, "Tweets", total/3, 20*time.Second)
	if err := inst.KillNode("B"); err != nil {
		t.Fatal(err)
	}

	// The connection must survive via replica promotion, not fail.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if st := conn.State(); st == core.ConnFailed {
			t.Fatalf("connection failed despite replication: %v", conn.Err())
		}
		if len(conn.Recoveries()) > 0 && conn.State() == core.ConnConnected {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(conn.Recoveries()) == 0 {
		t.Fatal("no recovery recorded after store-node loss")
	}
	// The nodegroup now points partition 1 at the promoted replica host.
	for _, n := range ds.NodeGroup {
		if n == "B" {
			t.Fatalf("dead node still in nodegroup: %v", ds.NodeGroup)
		}
	}

	// All records eventually persist: pre-failure data survives in the
	// promoted replica; in-flight records are replayed by at-least-once.
	waitIngested(t, inst, "feeds", "F", "Tweets", total, 60*time.Second)
}

// TestReplicationKeepsReplicaInSync checks the synchronous-mirroring write
// path directly.
func TestReplicationKeepsReplicaInSync(t *testing.T) {
	inst := startTest(t, "A", "B")
	inst.MustExec(`use dataverse feeds;
		create type Tweet as open { id: string, message_text: string };
		create dataset Tweets(Tweet) primary key id with replication;
		create feed F using tweetgen_adaptor ("rate"="100000", "count"="500", "seed"="33");
		connect feed F to dataset Tweets using policy Basic;`)
	waitIngested(t, inst, "feeds", "F", "Tweets", 500, 20*time.Second)

	ds, _ := inst.Catalog().Dataset("feeds", "Tweets")
	for i := range ds.NodeGroup {
		replicaNode := ds.ReplicaOf(i)
		if replicaNode == "" {
			t.Fatalf("partition %d has no replica", i)
		}
		primarySM, err := inst.StorageManager(ds.NodeGroup[i])
		if err != nil {
			t.Fatal(err)
		}
		replicaSM, err := inst.StorageManager(replicaNode)
		if err != nil {
			t.Fatal(err)
		}
		prim := primarySM.PartitionIdx(ds.QualifiedName(), i)
		repl := replicaSM.PartitionIdx(ds.QualifiedName(), i)
		if prim == nil || repl == nil {
			t.Fatalf("partition %d: primary or replica not open", i)
		}
		// Mirror writes are synchronous per frame, but waitCount can return
		// between a primary insert and its mirror landing; poll until the
		// counts converge instead of sleeping a fixed amount.
		deadline := time.Now().Add(10 * time.Second)
		for {
			np, _ := prim.Count()
			nr, _ := repl.Count()
			if np == nr && np > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("partition %d: primary has %d records, replica %d", i, np, nr)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestUnreplicatedStoreLossStillTerminates(t *testing.T) {
	// Without the extension, the paper's behaviour is preserved: store
	// node loss ends the feed early.
	inst := startTest(t, "A", "B")
	inst.MustExec(`use dataverse feeds;
		create type Tweet as open { id: string, message_text: string };
		create dataset Tweets(Tweet) primary key id;
		create feed F using tweetgen_adaptor ("rate"="2000", "seed"="35");
		connect feed F to dataset Tweets using policy FaultTolerant;`)
	conn, _ := inst.Feeds().Connection("feeds", "F", "Tweets")
	waitCount(t, inst, "Tweets", 100, 20*time.Second)
	intake, _, _ := conn.Locations()
	victim := "B"
	for _, n := range intake {
		if n == "B" {
			victim = "A"
		}
	}
	if err := inst.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for conn.State() != core.ConnFailed && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if conn.State() != core.ConnFailed {
		t.Fatalf("unreplicated dataset survived store loss: %v", conn.State())
	}
}

func TestFeedMaintainsSecondaryIndexes(t *testing.T) {
	// Records ingested through a feed must appear in secondary indexes,
	// exactly like inserted ones (§5.3.1's IndexInsert semantics).
	inst := startTest(t, "A")
	inst.MustExec(`use dataverse feeds;
		create type GT as open { id: string, message_text: string };
		create dataset GTs(GT) primary key id;
		create index locIdx on GTs(location) type rtree;
		create function locate($t) {
			record-merge($t, {"location": create-point($t.longitude, $t.latitude)})
		};
		create feed F using tweetgen_adaptor ("rate"="50000", "count"="300", "seed"="91")
			apply function locate;
		connect feed F to dataset GTs using policy Basic;`)
	waitIngested(t, inst, "feeds", "F", "GTs", 300, 20*time.Second)

	sm, err := inst.StorageManager("A")
	if err != nil {
		t.Fatal(err)
	}
	part := sm.Partition("feeds.GTs")
	if part == nil {
		t.Fatal("partition not open")
	}
	everywhere := adm.Rectangle{Low: adm.Point{X: -180, Y: -90}, High: adm.Point{X: 180, Y: 90}}
	recs, err := part.SearchRTree("locIdx", everywhere)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 300 {
		t.Fatalf("rtree holds %d entries, want 300", len(recs))
	}
}
