package asterixfeeds

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"asterixfeeds/internal/adm"
	"asterixfeeds/internal/core"
	"asterixfeeds/internal/tweetgen"
)

// TestAdminEndpointsDuringLiveFeed smoke-tests the feedwatch surface while a
// socket feed is actively ingesting: /feeds must report a connected feed
// with moving counters, /metrics must expose the same series in Prometheus
// text form, pprof must answer, and the `show feeds` verb must render the
// same snapshot through the AQL result machinery.
func TestAdminEndpointsDuringLiveFeed(t *testing.T) {
	srv := tweetgen.NewServer(tweetgen.ConstantPattern(5000, 30*time.Second), 97)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inst := startTest(t, "A", "B")
	inst.MustExec(tweetDDL)
	inst.MustExec(fmt.Sprintf(`use dataverse feeds;
		create feed WatchFeed using socket_adaptor ("sockets"="%s");
		connect feed WatchFeed to dataset Tweets using policy Basic;`, addr))

	ts := httptest.NewServer(inst.ConsoleHandler())
	defer ts.Close()

	waitCount(t, inst, "Tweets", 300, 20*time.Second)

	// /feeds: the live connection with non-zero totals.
	var acts []core.FeedActivity
	getJSON(t, ts.URL+"/feeds", &acts)
	if len(acts) != 1 {
		t.Fatalf("/feeds reported %d connections, want 1", len(acts))
	}
	a := acts[0]
	if a.State != "connected" {
		t.Fatalf("/feeds state = %q, want connected", a.State)
	}
	if a.PersistedTotal < 300 || a.CollectedTotal < a.PersistedTotal {
		t.Fatalf("/feeds totals incoherent: collected %d, persisted %d", a.CollectedTotal, a.PersistedTotal)
	}
	if len(a.IntakeNodes) == 0 || len(a.StoreNodes) == 0 {
		t.Fatalf("/feeds placement missing: %+v", a)
	}

	// The snapshot must agree with the registry it was derived from:
	// persisted only grows, so the later registry read bounds it below.
	reg := inst.Registry()
	if v, ok := reg.Value("feed." + a.Connection + ".persisted"); !ok || v < a.PersistedTotal {
		t.Fatalf("registry persisted = %d,%v, want >= /feeds total %d", v, ok, a.PersistedTotal)
	}
	if _, ok := reg.Rate("feed." + a.Connection + ".persisted"); !ok {
		t.Fatal("registry has no persisted rate for the live connection")
	}

	// /metrics: Prometheus text with feed series and node-level LSM/frame
	// counters beside them.
	body := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		"persisted_total", "persisted_rate", "latency_p99_seconds",
		"node_A_frames", "node_A_lsm_wal_appends",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// pprof answers.
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}

	// `show feeds` renders the same connection through the AQL verb.
	results := inst.MustExec("show feeds;")
	if len(results) != 1 || results[0].Kind != "show-feeds" {
		t.Fatalf("show feeds results = %+v", results)
	}
	lst, ok := results[0].Value.(*adm.OrderedList)
	if !ok || len(lst.Items) != 1 {
		t.Fatalf("show feeds value = %T with %v items", results[0].Value, lst)
	}
	rec := lst.Items[0].(*adm.Record)
	if v, _ := rec.Field("connection"); string(v.(adm.String)) != a.Connection {
		t.Fatalf("show feeds connection = %v, want %s", v, a.Connection)
	}
	if v, _ := rec.Field("persistedTotal"); int64(v.(adm.Int64)) < 300 {
		t.Fatalf("show feeds persistedTotal = %v, want >= 300", v)
	}

	inst.MustExec(`disconnect feed WatchFeed from dataset Tweets;`)

	// Teardown unregisters the connection's series; /feeds still lists the
	// disconnected connection with its final counters.
	if _, ok := reg.Value("feed." + a.Connection + ".persisted"); ok {
		t.Fatal("registry still serves a torn-down connection's series")
	}
	getJSON(t, ts.URL+"/feeds", &acts)
	if len(acts) != 1 || acts[0].State != "disconnected" {
		t.Fatalf("/feeds after disconnect = %+v", acts)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsDocMatchesRegistry keeps docs/METRICS.md honest: every series a
// live instance registers must be documented, and every documented series
// must still exist. Node names normalize to `node.<n>.` and connection ids
// to `feed.<conn>.`, matching the doc's placeholder convention.
func TestMetricsDocMatchesRegistry(t *testing.T) {
	inst := startTest(t, "A")
	inst.MustExec(tweetDDL)
	inst.MustExec(`
		create feed DocFeed using tweetgen_adaptor ("rate"="3000", "count"="50", "seed"="11");
		connect feed DocFeed to dataset Tweets using policy Basic;
	`)
	waitCount(t, inst, "Tweets", 50, 20*time.Second)

	acts := inst.Feeds().FeedActivity()
	if len(acts) != 1 {
		t.Fatalf("feed activity = %d entries, want 1", len(acts))
	}
	connID := acts[0].Connection

	live := map[string]bool{}
	for _, s := range inst.Registry().Snapshot() {
		name := strings.Replace(s.Name, "feed."+connID+".", "feed.<conn>.", 1)
		name = strings.Replace(name, "node.A.", "node.<n>.", 1)
		live[name] = true
	}

	doc, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range regexp.MustCompile("`((?:node|feed)\\.[^`*]+)`").FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}

	for name := range live {
		if !documented[name] {
			t.Errorf("live series %q is not documented in docs/METRICS.md", name)
		}
	}
	for name := range documented {
		if !live[name] {
			t.Errorf("docs/METRICS.md documents %q, which no live instance registers", name)
		}
	}
}
