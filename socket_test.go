package asterixfeeds

import (
	"fmt"
	"testing"
	"time"

	"asterixfeeds/internal/tweetgen"
)

// TestSocketAdaptorEndToEnd exercises the full external-source path of the
// paper's experiments: a standalone TweetGen TCP server pushes JSON tweets;
// the generic socket adaptor dials it, performs the initial handshake,
// parses, and the feed persists into an indexed dataset.
func TestSocketAdaptorEndToEnd(t *testing.T) {
	srv := tweetgen.NewServer(tweetgen.ConstantPattern(5000, 30*time.Second), 51)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inst := startTest(t, "A", "B")
	inst.MustExec(tweetDDL)
	inst.MustExec(fmt.Sprintf(`use dataverse feeds;
		create feed SocketFeed using socket_adaptor ("sockets"="%s");
		connect feed SocketFeed to dataset Tweets using policy Basic;`, addr))

	waitCount(t, inst, "Tweets", 500, 20*time.Second)
	if srv.Sent() < 500 {
		t.Fatalf("server pushed only %d tweets", srv.Sent())
	}
	inst.MustExec(`disconnect feed SocketFeed from dataset Tweets;`)
}

// TestSocketAdaptorParallelPartitions runs one adaptor instance per
// configured socket address (the paper's 6-generator setup of §5.7.3).
func TestSocketAdaptorParallelPartitions(t *testing.T) {
	var addrs string
	for i := 0; i < 3; i++ {
		srv := tweetgen.NewServer(tweetgen.ConstantPattern(3000, 30*time.Second), int64(60+i))
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		if i > 0 {
			addrs += ","
		}
		addrs += addr
	}
	inst := startTest(t, "A", "B", "C")
	inst.MustExec(tweetDDL)
	inst.MustExec(fmt.Sprintf(`use dataverse feeds;
		create feed MultiFeed using socket_adaptor ("sockets"="%s");
		connect feed MultiFeed to dataset Tweets using policy Basic;`, addrs))

	conn, _ := inst.Feeds().Connection("feeds", "MultiFeed", "Tweets")
	intake, _, _ := conn.Locations()
	if len(intake) != 3 {
		t.Fatalf("intake parallelism = %d, want 3 (one per socket)", len(intake))
	}
	waitCount(t, inst, "Tweets", 900, 20*time.Second)
}

// TestSocketAdaptorSourceOutage verifies §6.2.3's external-source failure
// handling: when the source dies for good, the adaptor retries, gives up,
// and the feed terminates.
func TestSocketAdaptorSourceOutage(t *testing.T) {
	srv := tweetgen.NewServer(tweetgen.ConstantPattern(2000, 30*time.Second), 71)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inst := startTest(t, "A")
	inst.MustExec(tweetDDL)
	inst.MustExec(fmt.Sprintf(`use dataverse feeds;
		create feed OutageFeed using socket_adaptor ("sockets"="%s");
		connect feed OutageFeed to dataset Tweets using policy Basic;`, addr))
	waitCount(t, inst, "Tweets", 100, 20*time.Second)

	// The external source goes away permanently.
	srv.Close()
	conn, _ := inst.Feeds().Connection("feeds", "OutageFeed", "Tweets")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if conn.State().String() == "failed" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("feed state = %v after source outage, want failed", conn.State())
}

// TestFileFeedAdaptor exercises the built-in file_feed adaptor used by the
// batch-inserts experiment (Listing 5.16): a disk-resident record file acts
// as the external data source.
func TestFileFeedAdaptor(t *testing.T) {
	path := t.TempDir() + "/tweets.adm"
	var lines string
	for i := 0; i < 150; i++ {
		lines += fmt.Sprintf("{\"id\": \"f-%03d\", \"message_text\": \"from file #%d\"}\n", i, i)
	}
	if err := osWriteFile(path, []byte(lines)); err != nil {
		t.Fatal(err)
	}
	inst := startTest(t, "A")
	inst.MustExec(`use dataverse feeds;
		create type DiskTweet as open { id: string, message_text: string };
		create dataset DiskTweets(DiskTweet) primary key id;`)
	inst.MustExec(fmt.Sprintf(`use dataverse feeds;
		create feed UsersOnDisk using file_feed ("path"="%s", "format"="adm");
		connect feed UsersOnDisk to dataset DiskTweets using policy Basic;`, path))
	waitCount(t, inst, "DiskTweets", 150, 20*time.Second)
}
