package asterixfeeds_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryInternalPackageIsDocumented walks internal/ and requires two
// things of every package: a godoc package comment somewhere, and — for the
// direct children of internal/, the packages that appear in the layering
// table — that the comment lives in a dedicated doc.go, so the overview
// survives refactors of whichever file happened to be first alphabetically.
func TestEveryInternalPackageIsDocumented(t *testing.T) {
	pkgFiles := map[string][]string{}
	err := filepath.WalkDir("internal", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgFiles[dir] = append(pkgFiles[dir], path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgFiles) == 0 {
		t.Fatal("no packages found under internal/ (wrong working directory?)")
	}

	fset := token.NewFileSet()
	for dir, files := range pkgFiles {
		documented := ""
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			af, err := parser.ParseFile(fset, f, src, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Fatalf("%s: %v", f, err)
			}
			if af.Doc != nil && strings.HasPrefix(af.Doc.Text(), "Package ") {
				documented = f
				break
			}
		}
		if documented == "" {
			t.Errorf("package %s has no godoc package comment (// Package <name> ...)", dir)
			continue
		}
		// Top-level packages must keep the comment in doc.go specifically.
		if filepath.Dir(dir) == "internal" && filepath.Base(documented) != "doc.go" {
			t.Errorf("package %s keeps its package comment in %s; move it to %s",
				dir, filepath.Base(documented), filepath.Join(dir, "doc.go"))
		}
	}
}
