// Package asterixfeeds is the public face of this repository: a Go
// reproduction of "Data Ingestion in AsterixDB" (EDBT 2015). It boots a
// simulated shared-nothing AsterixDB instance — Hyracks execution layer,
// LSM-based partitioned storage, metadata catalog, and the feed runtime that
// is the paper's contribution — and drives it with the AQL subset of the
// paper's listings.
//
// Quick start:
//
//	inst, _ := asterixfeeds.Start(asterixfeeds.Config{Nodes: []string{"A", "B"}})
//	defer inst.Close()
//	inst.MustExec(`
//	    use dataverse feeds;
//	    create type Tweet as open { id: string, message_text: string };
//	    create dataset Tweets(Tweet) primary key id;
//	    create feed TwitterFeed using tweetgen_adaptor ("rate"="1000");
//	    connect feed TwitterFeed to dataset Tweets using policy Basic;
//	`)
package asterixfeeds

import (
	"fmt"
	"os"
	"sync"

	"asterixfeeds/internal/adm"
	"asterixfeeds/internal/aql"
	"asterixfeeds/internal/core"
	"asterixfeeds/internal/governor"
	"asterixfeeds/internal/hyracks"
	"asterixfeeds/internal/lsm"
	"asterixfeeds/internal/metadata"
	"asterixfeeds/internal/metrics"
	"asterixfeeds/internal/storage"
	"asterixfeeds/internal/tweetgen"
)

// Config configures an Instance. The zero value starts a single-node
// instance in a temporary directory.
type Config struct {
	// Nodes names the worker nodes; default ["nc1"].
	Nodes []string
	// DataDir roots per-node storage; default a fresh temp dir (removed
	// on Close).
	DataDir string
	// Hyracks tunes the execution layer.
	Hyracks hyracks.Config
	// Feeds tunes the Central Feed Manager.
	Feeds core.Options
	// LSM tunes the storage trees.
	LSM lsm.Options
	// Governor tunes each node's ingestion governor (memory budget,
	// observe-only mode). The zero value applies the governor defaults.
	Governor governor.Config
}

// Instance is a running simulated AsterixDB instance.
type Instance struct {
	cluster  *hyracks.Cluster
	catalog  *metadata.Catalog
	feeds    *core.Manager
	registry *metrics.Registry
	dataDir  string
	ownDir   bool
	govCfg   governor.Config

	mu        sync.Mutex
	dataverse string
	closed    bool
}

// Start boots an instance: the cluster with one storage manager per node,
// the catalog, the Central Feed Manager (with TweetGen, socket, and file
// adaptors installed), and the AQL UDF compiler hook.
func Start(cfg Config) (*Instance, error) {
	nodes := cfg.Nodes
	if len(nodes) == 0 {
		nodes = []string{"nc1"}
	}
	dataDir := cfg.DataDir
	ownDir := false
	if dataDir == "" {
		d, err := os.MkdirTemp("", "asterixfeeds-*")
		if err != nil {
			return nil, err
		}
		dataDir = d
		ownDir = true
	}
	// One registry serves the whole instance (feedwatch): the feed manager
	// publishes per-connection metrics into it, and node-level LSM and
	// frame-traffic metrics land beside them, so a single /metrics endpoint
	// covers every layer.
	reg := cfg.Feeds.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
		cfg.Feeds.Registry = reg
	}
	if cfg.Hyracks.FrameObserver == nil {
		// Pre-resolve the boot nodes' counters so the steady-state frame
		// path is two atomic adds, no registry lookup. The map is read-only
		// after this loop; nodes added later fall back to the locked
		// registry lookup.
		type nodeTraffic struct{ frames, records *metrics.Counter }
		traffic := make(map[string]nodeTraffic, len(nodes))
		for _, n := range nodes {
			traffic[n] = nodeTraffic{
				frames:  reg.Counter("node." + n + ".frames"),
				records: reg.Counter("node." + n + ".records"),
			}
		}
		cfg.Hyracks.FrameObserver = func(node, _ string, f *hyracks.Frame) {
			t, ok := traffic[node]
			if !ok {
				t = nodeTraffic{
					frames:  reg.Counter("node." + node + ".frames"),
					records: reg.Counter("node." + node + ".records"),
				}
			}
			t.frames.Add(1)
			t.records.Add(int64(f.Len()))
		}
	}
	cluster := hyracks.NewCluster(cfg.Hyracks, nodes...)
	sms := make(map[string]*storage.Manager, len(nodes))
	for _, n := range nodes {
		sm := newNodeStorage(reg, n, nodeDir(dataDir, n), cfg.LSM)
		sms[n] = sm
		cluster.Node(n).SetService(storage.ServiceName, sm)
		newNodeGovernor(reg, cluster, n, sm, cfg.Governor)
	}
	// Reload a previously persisted catalog (metadata survives restarts
	// just as stored data does). Absent or unreadable images start fresh.
	catalog := metadata.NewCatalog()
	if img, err := os.ReadFile(catalogPath(dataDir)); err == nil {
		if restored, err := metadata.LoadCatalog(img); err == nil {
			catalog = restored
		} else {
			cluster.Close()
			return nil, fmt.Errorf("asterixfeeds: corrupt catalog image: %w", err)
		}
	}
	// Reopen every recovered dataset partition now, fanned across a bounded
	// worker pool per node, so restart cost tracks the slowest partition's
	// recovery rather than the sum — and so recovery failures surface here,
	// at Start, instead of on the first post-restart insert.
	for _, n := range nodes {
		var refs []storage.PartitionRef
		for _, ds := range catalog.Datasets() {
			for i, host := range ds.NodeGroup {
				if host == n {
					refs = append(refs, storage.PartitionRef{Dataset: ds, Idx: i})
				}
				if ds.Replicated && ds.ReplicaOf(i) == n {
					refs = append(refs, storage.PartitionRef{Dataset: ds, Idx: i, Replica: true})
				}
			}
		}
		if err := sms[n].OpenPartitions(refs, 0); err != nil {
			cluster.Close()
			return nil, fmt.Errorf("asterixfeeds: recovering node %s storage: %w", n, err)
		}
	}
	feeds := core.NewManager(cluster, catalog, cfg.Feeds)
	tweetgen.RegisterAdaptor(feeds.Adaptors())

	inst := &Instance{
		cluster:   cluster,
		catalog:   catalog,
		feeds:     feeds,
		registry:  reg,
		dataDir:   dataDir,
		ownDir:    ownDir,
		govCfg:    cfg.Governor,
		dataverse: "Default",
	}
	catalog.CreateDataverse("Default") //nolint:errcheck // always succeeds
	feeds.SetAQLCompiler(inst.compileAQLFunction)
	return inst, nil
}

func nodeDir(root, node string) string { return root + "/" + node }

// newNodeStorage builds a node's storage manager with a private lsm.Metrics
// shared by every tree the node opens, and publishes the node's storage
// counters and component gauges under "node.<name>.lsm.*".
func newNodeStorage(reg *metrics.Registry, name, dir string, lsmOpt lsm.Options) *storage.Manager {
	lm := &lsm.Metrics{}
	lsmOpt.Metrics = lm
	sm := storage.NewManager(name, dir, lsmOpt)
	p := "node." + name + ".lsm"
	reg.RegisterCounter(p+".wal_appends", &lm.WALAppends)
	reg.RegisterCounter(p+".wal_bytes", &lm.WALBytes)
	reg.RegisterCounter(p+".wal_syncs", &lm.WALSyncs)
	reg.RegisterCounter(p+".flushes", &lm.Flushes)
	reg.RegisterCounter(p+".flushed_entries", &lm.FlushedEntries)
	reg.RegisterCounter(p+".merges", &lm.Merges)
	reg.RegisterCounter(p+".block_reads", &lm.BlockReads)
	reg.RegisterCounter(p+".write_stalls", &lm.WriteStalls)
	// Recovery observability: WAL records replayed by tree opens on this
	// node, wall-clock recovery time, and durable manifest rewrites. After a
	// restart with a clean checkpoint, recovery_replayed_records stays 0.
	reg.RegisterCounter(p+".recovery_replayed_records", &lm.RecoveryReplayed)
	reg.RegisterCounter(p+".recovery_ms", &lm.RecoveryMillis)
	reg.RegisterCounter(p+".manifest_rewrites", &lm.ManifestRewrites)
	// The node-wide block cache (installed by NewManager when the caller
	// supplied none): hits vs misses give the read path's memory-speed
	// fraction, bytes tracks residency against the fixed capacity.
	if bc := sm.BlockCache(); bc != nil {
		reg.RegisterGaugeFunc(p+".cache.hits", func() int64 { return bc.Stats().Hits })
		reg.RegisterGaugeFunc(p+".cache.misses", func() int64 { return bc.Stats().Misses })
		reg.RegisterGaugeFunc(p+".cache.evictions", func() int64 { return bc.Stats().Evictions })
		reg.RegisterGaugeFunc(p+".cache.bytes", func() int64 { return bc.Stats().Bytes })
	}
	reg.RegisterGaugeFunc(p+".memtable_bytes", func() int64 { return int64(sm.Stats().MemtableBytes) })
	reg.RegisterGaugeFunc(p+".memtable_entries", func() int64 { return int64(sm.Stats().MemtableEntries) })
	reg.RegisterGaugeFunc(p+".runs", func() int64 { return int64(sm.Stats().Runs) })
	// Background-pipeline health: queued frozen memtables waiting on the
	// flusher and runs beyond MaxRuns waiting on the compactor. Both are
	// bounded by design; sustained non-zero values mean the disk cannot keep
	// up with the ingest rate.
	reg.RegisterGaugeFunc(p+".immutables", func() int64 { return int64(sm.Stats().Immutables) })
	reg.RegisterGaugeFunc(p+".compaction_debt", func() int64 { return int64(sm.Stats().CompactionDebt) })
	return sm
}

// newNodeGovernor builds a node's ingestion governor, feeds it the byte
// sources of every layer that buffers ingested data on the node — feed
// backlogs and spill files (core), memtables (lsm), in-flight frames
// (hyracks) — plus the LSM backpressure signal, registers it as the node
// service the intake operators and the elastic controller consult, and
// publishes its state under "node.<name>.governor.*".
func newNodeGovernor(reg *metrics.Registry, cluster *hyracks.Cluster, name string, sm *storage.Manager, cfg governor.Config) *governor.Governor {
	g := governor.New(name, cfg)
	nc := cluster.Node(name)
	g.RegisterSource("lsm", func() int64 { return int64(sm.Stats().MemtableBytes) })
	g.RegisterSource("frames", nc.InFlightFrameBytes)
	// The node's FeedManager is installed lazily by the first feed scheduled
	// here, so the source resolves it per call rather than capturing it.
	g.RegisterSource("feeds", func() int64 {
		fm, _ := nc.Service(core.FeedManagerService).(*core.FeedManager)
		if fm == nil {
			return 0
		}
		return fm.TrackedBytes()
	})
	// LSM backpressure: frozen memtables queued for flush plus runs awaiting
	// compaction. Four queued background units count as "at budget", so a
	// storage layer that cannot keep up throttles intake even while tracked
	// bytes still look healthy (write stalls are the end state this avoids).
	g.RegisterSignal("lsm_backpressure", func() float64 {
		st := sm.Stats()
		return float64(st.Immutables+st.CompactionDebt) / 4
	})
	p := "node." + name + ".governor"
	reg.RegisterGaugeFunc(p+".budget_bytes", g.Budget)
	reg.RegisterGaugeFunc(p+".tracked_bytes", g.TrackedBytes)
	reg.RegisterGaugeFunc(p+".pressure_permille", func() int64 { return int64(g.Pressure() * 1000) })
	reg.RegisterCounter(p+".admitted_bytes", &g.AdmittedBytes)
	reg.RegisterCounter(p+".admitted_records", &g.AdmittedRecords)
	reg.RegisterCounter(p+".shed_frames", &g.ShedFrames)
	reg.RegisterCounter(p+".shed_records", &g.ShedRecords)
	reg.RegisterCounter(p+".delays", &g.Delays)
	reg.RegisterCounter(p+".elastic_vetoes", &g.ElasticVetoes)
	nc.SetService(governor.ServiceName, g)
	return g
}

func catalogPath(root string) string { return root + "/catalog.adm" }

// saveCatalog snapshots the catalog to disk (best effort; called after DDL
// statements and on Close).
func (in *Instance) saveCatalog() error {
	img, err := in.catalog.Marshal()
	if err != nil {
		return err
	}
	tmp := catalogPath(in.dataDir) + ".tmp"
	if err := os.WriteFile(tmp, img, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, catalogPath(in.dataDir))
}

// Cluster exposes the execution layer (node management, failure injection).
func (in *Instance) Cluster() *hyracks.Cluster { return in.cluster }

// Catalog exposes the metadata catalog.
func (in *Instance) Catalog() *metadata.Catalog { return in.catalog }

// Feeds exposes the Central Feed Manager (connections, adaptor and function
// registries).
func (in *Instance) Feeds() *core.Manager { return in.feeds }

// Registry exposes the instance's named-metric registry: per-connection feed
// metrics plus node-level LSM and frame-traffic metrics. Never nil.
func (in *Instance) Registry() *metrics.Registry { return in.registry }

// Dataverse reports the session's active dataverse.
func (in *Instance) Dataverse() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dataverse
}

// AddNode joins a new worker node (with storage) to the running instance.
func (in *Instance) AddNode(name string) error {
	n, err := in.cluster.AddNode(name)
	if err != nil {
		return err
	}
	sm := newNodeStorage(in.registry, name, nodeDir(in.dataDir, name), lsm.Options{})
	n.SetService(storage.ServiceName, sm)
	newNodeGovernor(in.registry, in.cluster, name, sm, in.govCfg)
	return nil
}

// Governor returns the named node's ingestion governor, or nil for an
// unknown node.
func (in *Instance) Governor(node string) *governor.Governor {
	n := in.cluster.Node(node)
	if n == nil {
		return nil
	}
	g, _ := n.Service(governor.ServiceName).(*governor.Governor)
	return g
}

// KillNode injects a hard failure of the named node.
func (in *Instance) KillNode(name string) error { return in.cluster.KillNode(name) }

// StorageManager returns the named node's storage manager.
func (in *Instance) StorageManager(node string) (*storage.Manager, error) {
	n := in.cluster.Node(node)
	if n == nil {
		return nil, fmt.Errorf("asterixfeeds: unknown node %q", node)
	}
	sm, _ := n.Service(storage.ServiceName).(*storage.Manager)
	if sm == nil {
		return nil, fmt.Errorf("asterixfeeds: node %q has no storage manager", node)
	}
	return sm, nil
}

// ScanDataset streams every record of the named dataset in the active
// dataverse, across all live partitions. It implements aql.DataSource.
func (in *Instance) ScanDataset(name string, fn func(*adm.Record) bool) error {
	ds, ok := in.catalog.Dataset(in.Dataverse(), name)
	if !ok {
		return fmt.Errorf("asterixfeeds: unknown dataset %s", name)
	}
	for i, node := range ds.NodeGroup {
		nc := in.cluster.Node(node)
		if nc == nil || !nc.Alive() {
			continue
		}
		sm, _ := nc.Service(storage.ServiceName).(*storage.Manager)
		if sm == nil {
			continue
		}
		p, err := sm.OpenPartitionIdx(ds, i, false)
		if err != nil {
			return err
		}
		stop := false
		err = p.Scan(func(rec *adm.Record) bool {
			if !fn(rec) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// DatasetCount reports the number of live records in the named dataset in
// the active dataverse.
func (in *Instance) DatasetCount(name string) (int, error) {
	n := 0
	err := in.ScanDataset(name, func(*adm.Record) bool { n++; return true })
	return n, err
}

// compileAQLFunction is the core.AQLCompiler hook: stored AQL UDFs compile
// against this instance's datasets and functions.
func (in *Instance) compileAQLFunction(decl *metadata.FunctionDecl) (core.RecordFunction, error) {
	resolver := func(name string) (*metadata.FunctionDecl, bool) {
		return in.catalog.Function(decl.Dataverse, name)
	}
	return aql.CompileFunction(decl, in, resolver)
}

// Close shuts the instance down, closing feeds, jobs, and storage. The data
// directory is removed only if the instance created it.
func (in *Instance) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	in.closed = true
	in.mu.Unlock()

	in.saveCatalog() //nolint:errcheck // best effort on shutdown
	in.feeds.Close()
	in.cluster.Close()
	var first error
	for _, n := range in.cluster.AllNodes() {
		if sm, err := in.StorageManager(n); err == nil {
			if err := sm.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if in.ownDir {
		os.RemoveAll(in.dataDir)
	}
	return first
}
