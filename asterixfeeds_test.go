package asterixfeeds

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"asterixfeeds/internal/adm"
	"asterixfeeds/internal/core"
	"asterixfeeds/internal/hyracks"
)

func startTest(t *testing.T, nodes ...string) *Instance {
	t.Helper()
	inst, err := Start(Config{
		Nodes: nodes,
		Hyracks: hyracks.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			HeartbeatTimeout:  150 * time.Millisecond,
		},
		Feeds: core.Options{
			MetricsWindow: 50 * time.Millisecond,
			AckTimeout:    200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	return inst
}

const tweetDDL = `
use dataverse feeds;
create type TwitterUser as open {
	screen_name: string,
	lang: string,
	friends_count: int32,
	statuses_count: int32,
	name: string,
	followers_count: int32
};
create type Tweet as open {
	id: string,
	user: TwitterUser,
	latitude: double?,
	longitude: double?,
	created_at: string,
	message_text: string,
	country: string?
};
create dataset Tweets(Tweet) primary key id;
`

func TestDDLAndInsertAndQuery(t *testing.T) {
	inst := startTest(t, "A", "B")
	inst.MustExec(tweetDDL)

	res := inst.MustExec(`insert into dataset Tweets (
		{"id": "t1",
		 "user": {"screen_name": "u", "lang": "en", "friends_count": 1,
		          "statuses_count": 2, "name": "U", "followers_count": 3},
		 "created_at": "2015-01-01",
		 "message_text": "hello #world"} );`)
	if res[0].Kind != "insert" || res[0].Value.(adm.Int64) != 1 {
		t.Fatalf("insert result = %+v", res[0])
	}

	v, err := inst.Query(`for $t in dataset Tweets return $t.id`)
	if err != nil {
		t.Fatal(err)
	}
	items := v.(*adm.OrderedList).Items
	if len(items) != 1 || items[0].(adm.String) != "t1" {
		t.Fatalf("query = %s", v)
	}
}

func TestInsertListOfRecords(t *testing.T) {
	inst := startTest(t, "A")
	inst.MustExec(tweetDDL)
	inst.MustExec(`insert into dataset Tweets (
		for $i in [{"id":"a"},{"id":"b"},{"id":"c"}]
		return {"id": $i.id,
			"user": {"screen_name":"u","lang":"en","friends_count":1,"statuses_count":1,"name":"n","followers_count":1},
			"created_at": "2015-01-01", "message_text": "m"} );`)
	n, err := inst.DatasetCount("Tweets")
	if err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestEndToEndFeedViaAQL(t *testing.T) {
	inst := startTest(t, "A", "B")
	inst.MustExec(tweetDDL)
	inst.MustExec(`
		create feed TwitterFeed using tweetgen_adaptor ("rate"="3000", "count"="600", "seed"="7");
		connect feed TwitterFeed to dataset Tweets using policy Basic;
	`)
	waitCount(t, inst, "Tweets", 600, 20*time.Second)
	inst.MustExec(`disconnect feed TwitterFeed from dataset Tweets;`)
}

func waitCount(t *testing.T, inst *Instance, dataset string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		n, err := inst.DatasetCount(dataset)
		if err != nil {
			t.Fatal(err)
		}
		if n >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	n, _ := inst.DatasetCount(dataset)
	t.Fatalf("dataset %s reached %d records, want %d", dataset, n, want)
}

// waitIngested is waitCount with a registry-backed first tier (feedwatch):
// the connection's own series say when the pipeline has plausibly drained —
// persisted reached the target and no acks are pending — and only then does
// the expensive partition scan run to confirm. Polling the registry instead
// of scanning also means the wait cannot return between a primary insert
// and its ack, which is what made fixed-sleep waits flaky.
func waitIngested(t *testing.T, inst *Instance, dv, feed, dataset string, want int, timeout time.Duration) {
	t.Helper()
	conn, ok := inst.Feeds().Connection(dv, feed, dataset)
	if !ok {
		t.Fatalf("no connection %s.%s -> %s", dv, feed, dataset)
	}
	reg := inst.Registry()
	prefix := "feed." + conn.ID()
	// The persisted series counts this connection's records only; the count
	// target covers the whole dataset, which may hold records from before
	// this connection (a restarted instance). The difference at entry is the
	// cheap-tier threshold — understating it only costs extra scans.
	base, err := inst.DatasetCount(dataset)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		persisted, _ := reg.Value(prefix + ".persisted")
		pending, _ := reg.Value(prefix + ".pending_acks")
		if persisted >= int64(want-base) && pending == 0 {
			n, err := inst.DatasetCount(dataset)
			if err != nil {
				t.Fatal(err)
			}
			if n >= want {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	persisted, _ := reg.Value(prefix + ".persisted")
	n, _ := inst.DatasetCount(dataset)
	t.Fatalf("dataset %s reached %d records (persisted metric %d), want %d", dataset, n, persisted, want)
}

// connSeries counts the registry series published under one connection's
// "feed.<id>." prefix — the restart test uses it to prove teardown
// unregisters a connection and a recovered feed re-registers exactly one
// set of series, no leaks and no duplicates.
func connSeries(inst *Instance, connID string) int {
	n := 0
	for _, s := range inst.Registry().Snapshot() {
		if strings.HasPrefix(s.Name, "feed."+connID+".") {
			n++
		}
	}
	return n
}

func TestCascadeViaAQLWithAQLFunction(t *testing.T) {
	inst := startTest(t, "A", "B")
	inst.MustExec(tweetDDL)
	// Listing 4.2 + 4.4 + 4.7, adapted: an AQL UDF extracting hashtags.
	inst.MustExec(`
		create type ProcessedTweet as open { id: string, message_text: string };
		create dataset ProcessedTweets(ProcessedTweet) primary key id;

		create function addHashTags($x) {
			let $topics := (for $token in word-tokens($x.message_text)
				where starts-with($token, "#")
				return $token)
			return record-merge($x, {"topics": $topics})
		};

		create feed TwitterFeed using tweetgen_adaptor ("rate"="2000", "seed"="3");
		create secondary feed ProcessedTwitterFeed from feed TwitterFeed apply function addHashTags;

		connect feed TwitterFeed to dataset Tweets using policy Basic;
		connect feed ProcessedTwitterFeed to dataset ProcessedTweets using policy Basic;
	`)
	waitCount(t, inst, "Tweets", 100, 20*time.Second)
	waitCount(t, inst, "ProcessedTweets", 100, 20*time.Second)

	// Processed records carry topics extracted by the AQL UDF.
	sawTopics := false
	err := inst.ScanDataset("ProcessedTweets", func(rec *adm.Record) bool {
		topics, ok := rec.Field("topics")
		if !ok {
			t.Fatalf("processed record lacks topics: %s", rec)
		}
		if len(topics.(*adm.OrderedList).Items) > 0 {
			sawTopics = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawTopics {
		t.Fatal("no record had extracted hashtags")
	}
	inst.MustExec(`
		disconnect feed ProcessedTwitterFeed from dataset ProcessedTweets;
		disconnect feed TwitterFeed from dataset Tweets;
	`)
}

func TestCustomPolicyViaAQL(t *testing.T) {
	inst := startTest(t, "A")
	inst.MustExec(`use dataverse feeds;
		create ingestion policy Spill_then_Throttle from policy Spill
			(("max.spill.size.on.disk"="512MB","excess.records.throttle"="true"));`)
	p, ok := inst.Catalog().Policy("Spill_then_Throttle")
	if !ok {
		t.Fatal("custom policy not stored")
	}
	if p.Param("max.spill.size.on.disk", "") != "512MB" {
		t.Fatalf("params = %v", p.Params)
	}
}

func TestSecondaryIndexViaAQL(t *testing.T) {
	inst := startTest(t, "A")
	inst.MustExec(`use dataverse feeds;
		create type PT as open { id: string, location: point? };
		create dataset PTs(PT) primary key id;
		create index locationIndex on PTs(location) type rtree;
	`)
	// Insert records with points; then search through the partition API.
	inst.MustExec(`insert into dataset PTs (
		for $i in [1, 2, 3]
		return {"id": "r" + lowercase("X") + "x", "location": create-point(1.0, 2.0)} );`)
	// Note: ids collide above (same string), so only 1 record survives —
	// upsert semantics.
	n, _ := inst.DatasetCount("PTs")
	if n != 1 {
		t.Fatalf("count after colliding inserts = %d, want 1 (upsert)", n)
	}
	sm, err := inst.StorageManager("A")
	if err != nil {
		t.Fatal(err)
	}
	part := sm.Partition("feeds.PTs")
	if part == nil {
		t.Fatal("partition not open")
	}
	recs, err := part.SearchRTree("locationIndex", adm.Rectangle{Low: adm.Point{X: 0, Y: 0}, High: adm.Point{X: 5, Y: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("rtree search = %d records", len(recs))
	}
}

func TestSpatialAggregationOverIngestedTweets(t *testing.T) {
	// End-to-end Listing 3.3: ingest tweets via a feed, then run the
	// spatial aggregation query over the persisted dataset.
	inst := startTest(t, "A", "B")
	inst.MustExec(tweetDDL)
	inst.MustExec(`
		create feed F using tweetgen_adaptor ("rate"="5000", "count"="400", "seed"="5");
		connect feed F to dataset Tweets;
	`)
	waitCount(t, inst, "Tweets", 400, 20*time.Second)

	v, err := inst.Query(`for $tweet in dataset Tweets
		let $loc := create-point($tweet.longitude, $tweet.latitude)
		let $region := create-rectangle(create-point(-130.0, 20.0), create-point(-60.0, 50.0))
		where spatial-intersect($loc, $region)
		group by $c := spatial-cell($loc, create-point(-130.0, 20.0), 10.0, 10.0) with $tweet
		return {"cell": $c, "count": count($tweet)}`)
	if err != nil {
		t.Fatal(err)
	}
	cells := v.(*adm.OrderedList).Items
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	total := int64(0)
	for _, c := range cells {
		n, _ := c.(*adm.Record).Field("count")
		total += int64(n.(adm.Int64))
	}
	if total != 400 {
		t.Fatalf("aggregated %d tweets, want 400", total)
	}
}

func TestExecErrors(t *testing.T) {
	inst := startTest(t, "A")
	for _, src := range []string{
		`create dataset D(NoType) primary key id;`,
		`create index i on NoDataset(f);`,
		`connect feed NoFeed to dataset NoDataset;`,
		`create feed F using no_such_adaptor;`,
		`insert into dataset Nope ( {"id": 1} );`,
		`create type T as open { f: NoSuchType };`,
		`for $x in dataset Nope return $x`,
	} {
		if _, err := inst.Exec(src); err == nil {
			t.Errorf("Exec(%q) succeeded", src)
		}
	}
	// Duplicate dataverse without IF NOT EXISTS errors; with it, succeeds.
	inst.MustExec(`create dataverse dv1;`)
	if _, err := inst.Exec(`create dataverse dv1;`); err == nil {
		t.Error("duplicate dataverse accepted")
	}
	inst.MustExec(`create dataverse dv1 if not exists;`)
}

func TestQueryWithStoredFunction(t *testing.T) {
	inst := startTest(t, "A")
	inst.MustExec(`use dataverse feeds;
		create function shout($x) { record-merge($x, {"loud": uppercase($x.word)}) };`)
	v, err := inst.Query(`for $r in [{"word": "hey"}] return shout($r)`)
	if err != nil {
		t.Fatal(err)
	}
	rec := v.(*adm.OrderedList).Items[0].(*adm.Record)
	if loud, _ := rec.Field("loud"); loud.(adm.String) != "HEY" {
		t.Fatalf("stored function result = %s", rec)
	}
}

func TestAddNodeAndKillNode(t *testing.T) {
	inst := startTest(t, "A")
	if err := inst.AddNode("B"); err != nil {
		t.Fatal(err)
	}
	if len(inst.Cluster().AliveNodes()) != 2 {
		t.Fatal("node not added")
	}
	if err := inst.KillNode("B"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(inst.Cluster().AliveNodes()) != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := inst.Cluster().AliveNodes(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("alive = %v", got)
	}
}

func TestUseDataverseSwitchesNamespace(t *testing.T) {
	inst := startTest(t, "A")
	inst.MustExec(`use dataverse one; create type T as open { id: string }; create dataset D(T) primary key id;`)
	inst.MustExec(`use dataverse two; create type T as open { id: string }; create dataset D(T) primary key id;`)
	if inst.Dataverse() != "two" {
		t.Fatalf("dataverse = %q", inst.Dataverse())
	}
	if _, ok := inst.Catalog().Dataset("one", "D"); !ok {
		t.Fatal("dataset in dataverse one missing")
	}
	if _, ok := inst.Catalog().Dataset("two", "D"); !ok {
		t.Fatal("dataset in dataverse two missing")
	}
}

func TestBatchInsertRepeatedStatements(t *testing.T) {
	// The Table 5.1 mechanism: repeated insert statements each pay the
	// per-statement compile+schedule cost but still work correctly.
	inst := startTest(t, "A")
	inst.MustExec(`use dataverse feeds;
		create type U as open { id: string };
		create dataset Users(U) primary key id;`)
	for batch := 0; batch < 5; batch++ {
		var b strings.Builder
		b.WriteString("insert into dataset Users ( [")
		for i := 0; i < 20; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, `{"id": "u-%d-%d"}`, batch, i)
		}
		b.WriteString("] );")
		inst.MustExec(b.String())
	}
	n, err := inst.DatasetCount("Users")
	if err != nil || n != 100 {
		t.Fatalf("count = %d, %v; want 100", n, err)
	}
}
