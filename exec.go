package asterixfeeds

import (
	"fmt"

	"asterixfeeds/internal/adm"
	"asterixfeeds/internal/aql"
	"asterixfeeds/internal/core"
	"asterixfeeds/internal/metadata"
	"asterixfeeds/internal/storage"
)

// Result is the outcome of one executed statement.
type Result struct {
	// Kind labels the statement ("create-type", "query", ...).
	Kind string
	// Message is a human-readable status for DDL statements.
	Message string
	// Value carries a query's result (an ordered list) or an insert's
	// record count.
	Value adm.Value
}

// Exec parses and executes a sequence of AQL statements against the
// instance, returning one Result per statement.
func (in *Instance) Exec(src string) ([]Result, error) {
	stmts, err := aql.Parse(src)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(stmts))
	ddl := false
	for _, st := range stmts {
		r, err := in.execStatement(st)
		if err != nil {
			if ddl {
				in.saveCatalog() //nolint:errcheck // best effort
			}
			return out, err
		}
		switch st.(type) {
		case *aql.Query, *aql.InsertInto, *aql.LoadDataset, *aql.UseDataverse, *aql.ShowFeeds:
		default:
			ddl = true
		}
		out = append(out, r)
	}
	if ddl {
		if err := in.saveCatalog(); err != nil {
			return out, fmt.Errorf("asterixfeeds: persisting catalog: %w", err)
		}
	}
	return out, nil
}

// MustExec is Exec for tests and examples: it panics on error.
func (in *Instance) MustExec(src string) []Result {
	out, err := in.Exec(src)
	if err != nil {
		panic(err)
	}
	return out
}

// Query executes a single query expression and returns its value.
func (in *Instance) Query(src string) (adm.Value, error) {
	e, err := aql.ParseExpr(src)
	if err != nil {
		return nil, err
	}
	ev := in.evaluator()
	return ev.Eval(e, nil)
}

func (in *Instance) evaluator() *aql.Evaluator {
	return &aql.Evaluator{
		Source: in,
		Functions: func(name string) (func([]adm.Value) (adm.Value, error), bool) {
			decl, ok := in.catalog.Function(in.Dataverse(), name)
			if !ok || decl.Kind != metadata.AQLFunction {
				return nil, false
			}
			cf, err := aql.CompileFunction(decl, in, func(n string) (*metadata.FunctionDecl, bool) {
				return in.catalog.Function(in.Dataverse(), n)
			})
			if err != nil {
				return nil, false
			}
			return func(args []adm.Value) (adm.Value, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("asterixfeeds: %s expects 1 argument", name)
				}
				rec, ok := args[0].(*adm.Record)
				if !ok {
					return nil, fmt.Errorf("asterixfeeds: %s expects a record argument", name)
				}
				return cf.ApplyValue(rec)
			}, true
		},
	}
}

func (in *Instance) execStatement(st aql.Statement) (Result, error) {
	switch s := st.(type) {
	case *aql.UseDataverse:
		// Lenient like the paper's listings: using an undeclared
		// dataverse creates it.
		if !in.catalog.HasDataverse(s.Name) {
			if err := in.catalog.CreateDataverse(s.Name); err != nil {
				return Result{}, err
			}
		}
		in.mu.Lock()
		in.dataverse = s.Name
		in.mu.Unlock()
		return Result{Kind: "use", Message: "dataverse " + s.Name}, nil

	case *aql.CreateDataverse:
		if in.catalog.HasDataverse(s.Name) {
			if s.IfNotExists {
				return Result{Kind: "create-dataverse", Message: "exists"}, nil
			}
			return Result{}, fmt.Errorf("asterixfeeds: dataverse %s already exists", s.Name)
		}
		if err := in.catalog.CreateDataverse(s.Name); err != nil {
			return Result{}, err
		}
		return Result{Kind: "create-dataverse", Message: "created " + s.Name}, nil

	case *aql.CreateType:
		dv := in.Dataverse()
		fields := make([]adm.Field, 0, len(s.Fields))
		for _, f := range s.Fields {
			base, ok := in.catalog.Type(dv, f.TypeName)
			if !ok {
				return Result{}, fmt.Errorf("asterixfeeds: unknown type %q in field %q", f.TypeName, f.Name)
			}
			t := base
			if f.List {
				t = &adm.OrderedListType{Item: base}
			}
			fields = append(fields, adm.Field{Name: f.Name, Type: t, Optional: f.Optional})
		}
		rt, err := adm.NewRecordType(s.Name, s.Open, fields)
		if err != nil {
			return Result{}, err
		}
		if err := in.catalog.CreateType(dv, s.Name, rt); err != nil {
			return Result{}, err
		}
		return Result{Kind: "create-type", Message: "created " + s.Name}, nil

	case *aql.CreateDataset:
		dv := in.Dataverse()
		t, ok := in.catalog.Type(dv, s.TypeName)
		if !ok {
			return Result{}, fmt.Errorf("asterixfeeds: unknown type %q", s.TypeName)
		}
		rt, ok := t.(*adm.RecordType)
		if !ok {
			return Result{}, fmt.Errorf("asterixfeeds: dataset type %q is not a record type", s.TypeName)
		}
		ds := &storage.Dataset{
			Dataverse:  dv,
			Name:       s.Name,
			Type:       rt,
			PrimaryKey: s.PrimaryKey,
			// Default nodegroup: every node alive at creation (§3.1.2).
			NodeGroup:  in.cluster.AliveNodes(),
			Replicated: s.Replicated,
		}
		if err := in.catalog.CreateDataset(ds); err != nil {
			return Result{}, err
		}
		return Result{Kind: "create-dataset", Message: "created " + ds.QualifiedName()}, nil

	case *aql.CreateIndex:
		kind := storage.BTree
		if s.Kind == "rtree" {
			kind = storage.RTree
		}
		err := in.catalog.AddIndex(in.Dataverse(), s.Dataset, storage.IndexDecl{
			Name: s.Name, Field: s.Field, Kind: kind,
		})
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: "create-index", Message: "created " + s.Name}, nil

	case *aql.CreateFeed:
		decl := &metadata.FeedDecl{
			Dataverse:     in.Dataverse(),
			Name:          s.Name,
			Primary:       !s.Secondary,
			AdaptorName:   s.Adaptor,
			AdaptorConfig: s.Config,
			SourceFeed:    s.SourceFeed,
			Function:      s.ApplyFunction,
		}
		if decl.Primary {
			if _, ok := in.feeds.Adaptors().Lookup(s.Adaptor); !ok {
				return Result{}, fmt.Errorf("asterixfeeds: unknown adaptor %q", s.Adaptor)
			}
		}
		if err := in.catalog.CreateFeed(decl); err != nil {
			return Result{}, err
		}
		return Result{Kind: "create-feed", Message: "created " + decl.QualifiedName()}, nil

	case *aql.CreateFunction:
		decl := &metadata.FunctionDecl{
			Dataverse: in.Dataverse(),
			Name:      s.Name,
			Kind:      metadata.AQLFunction,
			Params:    s.Params,
			Body:      s.BodyText,
		}
		// Compile eagerly to surface errors at declaration time.
		if len(s.Params) == 1 {
			if _, err := aql.CompileFunction(decl, in, nil); err != nil {
				return Result{}, err
			}
		}
		if err := in.catalog.CreateFunction(decl); err != nil {
			return Result{}, err
		}
		return Result{Kind: "create-function", Message: "created " + s.Name}, nil

	case *aql.CreatePolicy:
		base, ok := in.catalog.Policy(s.From)
		if !ok {
			return Result{}, fmt.Errorf("asterixfeeds: unknown base policy %q", s.From)
		}
		custom := base.Clone(s.Name)
		for k, v := range s.Params {
			custom.Params[k] = v
		}
		if err := in.catalog.CreatePolicy(custom); err != nil {
			return Result{}, err
		}
		return Result{Kind: "create-policy", Message: "created " + s.Name}, nil

	case *aql.ConnectFeed:
		conn, err := in.feeds.ConnectFeed(in.Dataverse(), s.Feed, s.Dataset, s.Policy)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: "connect-feed", Message: conn.ID() + " connected"}, nil

	case *aql.DisconnectFeed:
		if err := in.feeds.DisconnectFeed(in.Dataverse(), s.Feed, s.Dataset); err != nil {
			return Result{}, err
		}
		return Result{Kind: "disconnect-feed", Message: s.Feed + " disconnected"}, nil

	case *aql.Drop:
		if err := in.execDrop(s); err != nil {
			return Result{}, err
		}
		return Result{Kind: "drop-" + s.Kind, Message: "dropped " + s.Name}, nil

	case *aql.LoadDataset:
		n, err := in.LoadDataset(s.Dataset, s.Path)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: "load", Value: adm.Int64(int64(n)),
			Message: fmt.Sprintf("loaded %d record(s)", n)}, nil

	case *aql.InsertInto:
		n, err := in.execInsert(s)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: "insert", Value: adm.Int64(int64(n)),
			Message: fmt.Sprintf("inserted %d record(s)", n)}, nil

	case *aql.Query:
		ev := in.evaluator()
		v, err := ev.Eval(s.Body, nil)
		if err != nil {
			return Result{}, err
		}
		return Result{Kind: "query", Value: v}, nil

	case *aql.ShowFeeds:
		return Result{Kind: "show-feeds", Value: in.showFeedsValue(),
			Message: fmt.Sprintf("%d feed connection(s)", len(in.feeds.Connections()))}, nil
	}
	return Result{}, fmt.Errorf("asterixfeeds: unsupported statement %T", st)
}

// showFeedsValue renders every connection's FeedActivity snapshot as an ADM
// list of records, so `show feeds` output flows through the same result
// machinery (console JSON, REPL printing) as a query.
func (in *Instance) showFeedsValue() *adm.OrderedList {
	acts := in.feeds.FeedActivity()
	items := make([]adm.Value, 0, len(acts))
	for _, a := range acts {
		names := []string{
			"connection", "feed", "dataset", "policy", "state",
			"intakeNodes", "computeNodes", "storeNodes", "computeCount",
			"collectedTotal", "computedTotal", "persistedTotal",
			"collectRate", "computeRate", "persistRate",
			"backlog", "pendingAcks", "softFailures", "storeErrors",
			"replayed", "discarded", "throttledOut", "spilledTotal",
			"spilledBytes", "spillErrors", "latencyP50Ms", "latencyP99Ms",
		}
		values := []adm.Value{
			adm.String(a.Connection), adm.String(a.Feed), adm.String(a.Dataset),
			adm.String(a.Policy), adm.String(a.State),
			stringList(a.IntakeNodes), stringList(a.ComputeNodes), stringList(a.StoreNodes),
			adm.Int64(int64(a.ComputeCount)),
			adm.Int64(a.CollectedTotal), adm.Int64(a.ComputedTotal), adm.Int64(a.PersistedTotal),
			adm.Double(a.CollectRate), adm.Double(a.ComputeRate), adm.Double(a.PersistRate),
			adm.Int64(int64(a.Backlog)), adm.Int64(int64(a.PendingAcks)),
			adm.Int64(a.SoftFailures), adm.Int64(a.StoreErrors),
			adm.Int64(a.Replayed), adm.Int64(a.Discarded), adm.Int64(a.ThrottledOut),
			adm.Int64(a.SpilledTotal), adm.Int64(a.SpilledBytes), adm.Int64(a.SpillErrors),
			adm.Double(float64(a.LatencyP50) / 1e6), adm.Double(float64(a.LatencyP99) / 1e6),
		}
		if a.Error != "" {
			names = append(names, "error")
			values = append(values, adm.String(a.Error))
		}
		items = append(items, adm.MustRecord(names, values))
	}
	return &adm.OrderedList{Items: items}
}

func stringList(ss []string) *adm.OrderedList {
	items := make([]adm.Value, len(ss))
	for i, s := range ss {
		items[i] = adm.String(s)
	}
	return &adm.OrderedList{Items: items}
}

// execDrop removes a catalog object, refusing while feed connections still
// use it.
func (in *Instance) execDrop(s *aql.Drop) error {
	dv := in.Dataverse()
	usesDataset := func(name string) bool {
		for _, c := range in.feeds.Connections() {
			st := c.State()
			active := st == core.ConnConnected || st == core.ConnRecovering || st == core.ConnDisconnectedKeepAlive
			if active && c.Dataset().Dataverse == dv && c.Dataset().Name == name {
				return true
			}
		}
		return false
	}
	usesFeed := func(name string) bool {
		for _, c := range in.feeds.Connections() {
			st := c.State()
			active := st == core.ConnConnected || st == core.ConnRecovering || st == core.ConnDisconnectedKeepAlive
			if active && c.Feed().Dataverse == dv && c.Feed().Name == name {
				return true
			}
		}
		return false
	}
	switch s.Kind {
	case "dataset":
		if usesDataset(s.Name) {
			return fmt.Errorf("asterixfeeds: dataset %s has connected feeds; disconnect first", s.Name)
		}
		return in.catalog.DropDataset(dv, s.Name)
	case "feed":
		if usesFeed(s.Name) {
			return fmt.Errorf("asterixfeeds: feed %s is connected; disconnect first", s.Name)
		}
		return in.catalog.DropFeed(dv, s.Name)
	case "function":
		return in.catalog.DropFunction(dv, s.Name)
	case "policy":
		return in.catalog.DropPolicy(s.Name)
	}
	return fmt.Errorf("asterixfeeds: unknown drop kind %q", s.Kind)
}
