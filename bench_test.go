package asterixfeeds_test

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md's per-experiment index). Each benchmark executes the
// corresponding experiment at the quick scale and reports the paper's
// metric through b.ReportMetric, printing the full rows/series once.
//
// Run all of them:
//
//	go test -bench=. -benchmem
//
// For the longer report-scale variants, use cmd/feedbench.

import (
	"os"
	"sync"
	"testing"

	"asterixfeeds/internal/experiments"
)

// renderOnce avoids re-printing tables when the benchmark harness reruns a
// function to settle timing.
var renderOnce sync.Map

func printOnce(key string, render func()) {
	if _, loaded := renderOnce.LoadOrStore(key, true); !loaded {
		render()
	}
}

// BenchmarkTable51BatchVsFeed regenerates Table 5.1: average time per
// record for batch inserts (size 1 and 20) versus feed ingestion.
func BenchmarkTable51BatchVsFeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Table51Config{Records: 200, BatchSizes: []int{1, 20}, Preload: 200}
		rows, err := experiments.Table51(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgMsPerRecord, "batch1-ms/rec")
		b.ReportMetric(rows[1].AvgMsPerRecord, "batch20-ms/rec")
		b.ReportMetric(rows[2].AvgMsPerRecord, "feed-ms/rec")
		printOnce("table5.1", func() { experiments.RenderTable51(os.Stdout, rows) })
	}
}

// BenchmarkFig513CascadeVsIndependent regenerates Figure 5.13 (and the
// Table 5.2 setup): records persisted under the cascade versus independent
// network configurations across %OVERLAP.
func BenchmarkFig513CascadeVsIndependent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig513Config(experiments.QuickScale())
		cfg.Overlaps = []int{20, 80}
		rows, err := experiments.Fig513(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.CascadeB), "cascadeB-recs")
		b.ReportMetric(float64(last.IndependentB), "indepB-recs")
		printOnce("fig5.13", func() { experiments.RenderFig513(os.Stdout, rows) })
	}
}

// BenchmarkFig516Scalability regenerates Figures 5.14/5.16: records
// ingested as the cluster grows under constant offered load.
func BenchmarkFig516Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig516Config(experiments.QuickScale())
		cfg.ClusterSizes = []int{1, 2, 4}
		rows, err := experiments.Fig516(cfg)
		if err != nil {
			b.Fatal(err)
		}
		base := float64(rows[0].Persisted)
		top := float64(rows[len(rows)-1].Persisted)
		if base > 0 {
			b.ReportMetric(top/base, "scaleup-x")
		}
		printOnce("fig5.16", func() { experiments.RenderFig516(os.Stdout, rows) })
	}
}

// BenchmarkFig65FaultTolerance regenerates Figure 6.5: ingestion throughput
// under injected node failures, reporting the measured recovery times.
func BenchmarkFig65FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig65(experiments.DefaultFig65Config(experiments.QuickScale()))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Recovery1.Seconds()*1000, "recovery1-ms")
		b.ReportMetric(res.Recovery2.Seconds()*1000, "recovery2-ms")
		printOnce("fig6.5", func() { experiments.RenderFig65(os.Stdout, res) })
	}
}

// BenchmarkFig7xPolicies regenerates Figures 7.3-7.8: the five builtin
// ingestion policies under a square-wave arrival rate.
func BenchmarkFig7xPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig7Config(experiments.QuickScale())
		rows, err := experiments.Policies(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Policy {
			case "Discard":
				b.ReportMetric(float64(r.Discarded), "discarded-recs")
			case "Spill":
				b.ReportMetric(float64(r.Spilled), "spilled-recs")
			case "Throttle":
				b.ReportMetric(float64(r.ThrottledOut), "throttled-recs")
			}
		}
		printOnce("fig7.x", func() { experiments.RenderPolicies(os.Stdout, rows) })
	}
}

// BenchmarkFig79DiscardPattern and BenchmarkFig710ThrottlePattern
// regenerate Figures 7.9/7.10: the persisted-record-ID patterns that
// distinguish discarding (contiguous gaps) from throttling (uniform
// sampling).
func BenchmarkFig79DiscardPattern(b *testing.B) {
	benchPatterns(b, "Discard")
}

// BenchmarkFig710ThrottlePattern is the throttle half of the pattern pair.
func BenchmarkFig710ThrottlePattern(b *testing.B) {
	benchPatterns(b, "Throttle")
}

func benchPatterns(b *testing.B, which string) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig7Config(experiments.QuickScale())
		rows, err := experiments.DiscardVsThrottlePatterns(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == which {
				b.ReportMetric(float64(r.GapCount), "gaps")
				b.ReportMetric(float64(r.MaxGapLen), "max-gap-recs")
			}
		}
		printOnce("fig7.9-10", func() { experiments.RenderPatterns(os.Stdout, rows) })
	}
}

// BenchmarkFig711StormMongoDurable regenerates Figure 7.11: the glued
// Storm+MongoDB system with durable writes.
func BenchmarkFig711StormMongoDurable(b *testing.B) {
	benchStormMongo(b, true, "fig7.11")
}

// BenchmarkFig712StormMongoNonDurable regenerates Figure 7.12: the same
// glued system with non-durable writes.
func BenchmarkFig712StormMongoNonDurable(b *testing.B) {
	benchStormMongo(b, false, "fig7.12")
}

func benchStormMongo(b *testing.B, durable bool, key string) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultStormMongoConfig(experiments.QuickScale(), b.TempDir())
		res, err := experiments.StormMongo(cfg, durable)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.PersistedTotal), "persisted-recs")
		printOnce(key, func() { experiments.RenderStormMongo(os.Stdout, res) })
	}
}
