package asterixfeeds

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"

	"asterixfeeds/internal/adm"
	"asterixfeeds/internal/governor"
)

// This file implements the Feed Management Console of the paper's
// Appendix A as an HTTP surface: per-connection state, the physical nodes
// participating at the intake/compute/store stages, and the instantaneous
// rates at which data is received and persisted — plus an AQL endpoint.

// FeedStatus is the console's view of one feed connection.
type FeedStatus struct {
	// Connection is the connection id ("feed -> dataset").
	Connection string `json:"connection"`
	// State is the lifecycle state.
	State string `json:"state"`
	// Policy is the ingestion policy name.
	Policy string `json:"policy"`
	// IntakeNodes, ComputeNodes, StoreNodes are the stage placements.
	IntakeNodes  []string `json:"intakeNodes"`
	ComputeNodes []string `json:"computeNodes"`
	StoreNodes   []string `json:"storeNodes"`
	// CollectedTotal / PersistedTotal are lifetime record counts.
	CollectedTotal int64 `json:"collectedTotal"`
	PersistedTotal int64 `json:"persistedTotal"`
	// CollectRate / PersistRate are the latest instantaneous rates in
	// records/second.
	CollectRate float64 `json:"collectRate"`
	PersistRate float64 `json:"persistRate"`
	// SoftFailures counts records skipped over runtime exceptions.
	SoftFailures int64 `json:"softFailures"`
	// PendingAcks counts at-least-once records awaiting acknowledgment.
	PendingAcks int `json:"pendingAcks"`
	// Error carries the failure cause for failed connections.
	Error string `json:"error,omitempty"`
}

// Status reports the console view of every feed connection.
func (in *Instance) Status() []FeedStatus {
	conns := in.feeds.Connections()
	out := make([]FeedStatus, 0, len(conns))
	for _, c := range conns {
		intake, compute, store := c.Locations()
		st := FeedStatus{
			Connection:     c.ID(),
			State:          c.State().String(),
			Policy:         c.Policy().Name,
			IntakeNodes:    intake,
			ComputeNodes:   compute,
			StoreNodes:     store,
			CollectedTotal: c.Metrics.Collected.Total(),
			PersistedTotal: c.Metrics.Persisted.Total(),
			CollectRate:    latestRate(c.Metrics.Collected.Rates()),
			PersistRate:    latestRate(c.Metrics.Persisted.Rates()),
			SoftFailures:   c.Metrics.SoftFailures.Value(),
			PendingAcks:    c.PendingAcks(),
		}
		if err := c.Err(); err != nil {
			st.Error = err.Error()
		}
		out = append(out, st)
	}
	return out
}

// latestRate returns the most recent completed window's rate (skipping the
// still-filling last bucket when a previous one exists).
func latestRate(rates []float64) float64 {
	switch len(rates) {
	case 0:
		return 0
	case 1:
		return rates[0]
	default:
		return rates[len(rates)-2]
	}
}

// ConsoleHandler returns an http.Handler exposing the feed management
// console:
//
//	GET  /admin/status          connections as JSON
//	GET  /admin/cluster         node liveness as JSON
//	GET  /metrics               the full metric registry, Prometheus text
//	GET  /feeds                 per-connection FeedActivity snapshots, JSON
//	GET  /governor              per-node ingestion-governor snapshots, JSON
//	GET  /debug/pprof/          Go runtime profiles
//	POST /query                 AQL statements in the body; results as JSON
func (in *Instance) ConsoleHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, in.Status())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		in.registry.WriteProm(w) //nolint:errcheck // best effort over HTTP
	})
	mux.HandleFunc("/feeds", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, in.feeds.FeedActivity())
	})
	mux.HandleFunc("/governor", func(w http.ResponseWriter, r *http.Request) {
		var out []governor.Snapshot
		for _, n := range in.cluster.AllNodes() {
			if g := in.Governor(n); g != nil {
				out = append(out, g.Snapshot())
			}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/admin/cluster", func(w http.ResponseWriter, r *http.Request) {
		type node struct {
			Name  string `json:"name"`
			Alive bool   `json:"alive"`
		}
		var nodes []node
		alive := map[string]bool{}
		for _, n := range in.cluster.AliveNodes() {
			alive[n] = true
		}
		for _, n := range in.cluster.AllNodes() {
			nodes = append(nodes, node{Name: n, Alive: alive[n]})
		}
		writeJSON(w, nodes)
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST AQL statements", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results, err := in.Exec(string(body))
		type jsonResult struct {
			Kind    string `json:"kind"`
			Message string `json:"message,omitempty"`
			Value   any    `json:"value,omitempty"`
		}
		out := struct {
			Results []jsonResult `json:"results"`
			Error   string       `json:"error,omitempty"`
		}{}
		for _, res := range results {
			jr := jsonResult{Kind: res.Kind, Message: res.Message}
			if res.Value != nil {
				jr.Value = valueToJSON(res.Value)
			}
			out.Results = append(out.Results, jr)
		}
		if err != nil {
			out.Error = err.Error()
			w.WriteHeader(http.StatusBadRequest)
		}
		writeJSON(w, out)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort over HTTP
}

// valueToJSON converts an ADM value to a JSON-encodable Go value.
func valueToJSON(v adm.Value) any {
	switch t := v.(type) {
	case adm.Null, adm.Missing:
		return nil
	case adm.Boolean:
		return bool(t)
	case adm.Int64:
		return int64(t)
	case adm.Double:
		return float64(t)
	case adm.String:
		return string(t)
	case adm.Datetime:
		return t.Time().Format("2006-01-02T15:04:05.000Z")
	case adm.Point:
		return map[string]float64{"x": t.X, "y": t.Y}
	case adm.Rectangle:
		return map[string]any{"low": valueToJSON(t.Low), "high": valueToJSON(t.High)}
	case *adm.OrderedList:
		out := make([]any, len(t.Items))
		for i, it := range t.Items {
			out[i] = valueToJSON(it)
		}
		return out
	case *adm.UnorderedList:
		out := make([]any, len(t.Items))
		for i, it := range t.Items {
			out[i] = valueToJSON(it)
		}
		return out
	case *adm.Record:
		out := make(map[string]any, t.NumFields())
		for _, name := range t.FieldNames() {
			fv, _ := t.Field(name)
			out[name] = valueToJSON(fv)
		}
		return out
	default:
		return fmt.Sprint(v)
	}
}
